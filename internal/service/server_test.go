package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a started Server on a temp store with quiet logs.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxPerClient == 0 {
		cfg.MaxPerClient = 16
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLogger(t.Logf)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	s.Start()
	return s
}

// blockingBuild replaces Server.build with a stub that blocks until
// release is closed, then stores distinct-but-valid artifact bytes.
func blockingBuild(release <-chan struct{}) func(j *Job) ([]byte, error) {
	return func(j *Job) ([]byte, error) {
		select {
		case <-release:
			return []byte(fmt.Sprintf("{\"schema\":\"lpbuf.artifact/v1\",\"job\":%q}\n", j.Key())), nil
		case <-j.ctx.Done():
			return nil, j.ctx.Err()
		}
	}
}

// submitHTTP posts a spec and decodes the response status.
func submitHTTP(t *testing.T, ts *httptest.Server, spec JobSpec, wait bool) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad status body %q: %v", data, err)
		}
	}
	return st, resp
}

func fetchArtifact(t *testing.T, ts *httptest.Server, id string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch for %s: %s: %s", id, resp.Status, data)
	}
	return data, resp.Header.Get("X-Lpbuf-Cache")
}

// TestIdenticalJobsServeFromStore is the acceptance test: the same job
// submitted twice over HTTP yields byte-identical artifacts, with the
// second served from the content-addressed store — cache-hit counter
// up, no recompilation.
func TestIdenticalJobsServeFromStore(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Figures: []string{"5"}, Fig5Sizes: []int{16}}
	st1, resp1 := submitHTTP(t, ts, spec, true)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %s", resp1.Status)
	}
	if st1.State != StateDone {
		t.Fatalf("first job finished %s (%s)", st1.State, st1.Error)
	}
	if st1.CacheHit {
		t.Fatal("first job claims a cache hit on an empty store")
	}
	art1, via1 := fetchArtifact(t, ts, st1.ID)
	if via1 != "computed" {
		t.Fatalf("first artifact via %q, want computed", via1)
	}
	compiles := s.Registry().Snapshot().Counters["runner.compile_cache_misses"]
	if compiles == 0 {
		t.Fatal("first job compiled nothing")
	}

	st2, resp2 := submitHTTP(t, ts, spec, true)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %s", resp2.Status)
	}
	if st2.State != StateDone {
		t.Fatalf("second job finished %s (%s)", st2.State, st2.Error)
	}
	if !st2.CacheHit {
		t.Fatal("second identical job did not report a store cache hit")
	}
	if st2.Key != st1.Key {
		t.Fatalf("identical specs keyed differently: %s vs %s", st1.Key, st2.Key)
	}
	art2, via2 := fetchArtifact(t, ts, st2.ID)
	if via2 != "store-hit" {
		t.Fatalf("second artifact via %q, want store-hit", via2)
	}
	if !bytes.Equal(art1, art2) {
		t.Fatal("artifacts for identical jobs differ byte-wise")
	}

	snap := s.Registry().Snapshot()
	if hits := snap.Counters["service.store_hits"]; hits != 1 {
		t.Fatalf("service.store_hits = %d, want 1", hits)
	}
	if misses := snap.Counters["service.store_misses"]; misses != 1 {
		t.Fatalf("service.store_misses = %d, want 1", misses)
	}
	if after := snap.Counters["runner.compile_cache_misses"]; after != compiles {
		t.Fatalf("second job recompiled: compile_cache_misses %d -> %d", compiles, after)
	}
	if n, _ := s.Store().Len(); n != 1 {
		t.Fatalf("store holds %d objects, want 1", n)
	}
	if err := s.Store().Check(); err != nil {
		t.Fatalf("store inconsistent: %v", err)
	}
}

// TestDrainCompletesInFlightCancelsQueued proves the graceful-drain
// contract: the running job finishes and lands in the store, queued
// jobs are canceled without running, and the store stays consistent.
func TestDrainCompletesInFlightCancelsQueued(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	release := make(chan struct{})
	s.build = blockingBuild(release)

	a, err := s.Submit(JobSpec{Figures: []string{"3"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)
	b, err := s.Submit(JobSpec{Figures: []string{"8a"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(JobSpec{Figures: []string{"8b"}}, "test")
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain must cancel the queued jobs promptly even while a is stuck.
	waitState(t, b, StateCanceled)
	waitState(t, c, StateCanceled)
	if !s.Draining() {
		t.Fatal("Draining() false mid-drain")
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a job was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, a, StateDone)

	if n, _ := s.Store().Len(); n != 1 {
		t.Fatalf("store holds %d objects after drain, want 1 (only the in-flight job)", n)
	}
	if !s.Store().Has(a.Key()) {
		t.Fatal("in-flight job's artifact missing after drain")
	}
	if err := s.Store().Check(); err != nil {
		t.Fatalf("store inconsistent after drain: %v", err)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["service.jobs_canceled"]; got != 2 {
		t.Fatalf("jobs_canceled = %d, want 2", got)
	}
	if got := snap.Gauges["service.jobs_queued"]; got != 0 {
		t.Fatalf("jobs_queued gauge = %v after drain, want 0", got)
	}
	if got := snap.Gauges["service.jobs_running"]; got != 0 {
		t.Fatalf("jobs_running gauge = %v after drain, want 0", got)
	}

	// Submissions during/after drain are rejected with a 503-shaped error.
	if _, err := s.Submit(JobSpec{Figures: []string{"7"}}, "test"); err == nil {
		t.Fatal("submit accepted while draining")
	} else {
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Code != http.StatusServiceUnavailable {
			t.Fatalf("drain rejection = %v, want 503 RejectError", err)
		}
	}
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Status(); st.State == want {
			return
		} else if st.State.Terminal() && want != st.State {
			t.Fatalf("job %s reached %s, want %s (%s)", j.ID(), st.State, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.Status().State)
}

// TestQueueFullRejects exercises queue-depth admission over HTTP,
// including the Retry-After header.
func TestQueueFullRejects(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	s.build = blockingBuild(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, resp := submitHTTP(t, ts, JobSpec{Figures: []string{"3"}}, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	j, _ := s.Get(a.ID)
	waitState(t, j, StateRunning)
	if _, resp := submitHTTP(t, ts, JobSpec{Figures: []string{"8a"}}, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %s", resp.Status)
	}
	_, resp3 := submitHTTP(t, ts, JobSpec{Figures: []string{"8b"}}, false)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %s, want 429", resp3.Status)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.Registry().Snapshot().Counters["service.jobs_rejected"]; got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}
}

// TestPerClientCap verifies one client cannot monopolize the queue
// while another client still gets in.
func TestPerClientCap(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, QueueDepth: 64, MaxPerClient: 1})
	release := make(chan struct{})
	defer close(release)
	s.build = blockingBuild(release)

	if _, err := s.Submit(JobSpec{Figures: []string{"3"}, Client: "alice"}, ""); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(JobSpec{Figures: []string{"8a"}, Client: "alice"}, "")
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != http.StatusTooManyRequests {
		t.Fatalf("second alice submit = %v, want 429 RejectError", err)
	}
	if _, err := s.Submit(JobSpec{Figures: []string{"8a"}, Client: "bob"}, ""); err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
}

// TestCancelQueuedJob cancels a queued job via the HTTP API; the worker
// must skip it.
func TestCancelQueuedJob(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	release := make(chan struct{})
	s.build = blockingBuild(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, err := s.Submit(JobSpec{Figures: []string{"3"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)
	b, err := s.Submit(JobSpec{Figures: []string{"8a"}}, "test")
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+b.ID(), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", resp.Status)
	}
	waitState(t, b, StateCanceled)

	close(release)
	waitState(t, a, StateDone)
	if n, _ := s.Store().Len(); n != 1 {
		t.Fatalf("store holds %d objects, want 1 (canceled job must not have run)", n)
	}
}

// TestHotReload verifies admission fields apply live and startup-bound
// fields are ignored but reported.
func TestHotReload(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, QueueDepth: 8})
	next := s.Config()
	next.QueueDepth = 2
	next.MaxPerClient = 3
	next.Listen = "0.0.0.0:9999"
	next.MaxJobs = 7
	changed, ignored, err := s.Reload(next)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"listen", "max_jobs"}; !equalStrings(ignored, want) {
		t.Fatalf("ignored = %v, want %v", ignored, want)
	}
	if want := []string{"queue_depth: 8 -> 2", "max_per_client: 16 -> 3"}; !equalStrings(changed, want) {
		t.Fatalf("changed = %v, want %v", changed, want)
	}
	cfg := s.Config()
	if cfg.QueueDepth != 2 || cfg.MaxPerClient != 3 {
		t.Fatalf("admission fields not applied: %+v", cfg)
	}
	if cfg.Listen != "127.0.0.1:0" || cfg.MaxJobs != 1 {
		t.Fatalf("startup-bound fields changed: %+v", cfg)
	}
	if got := s.Registry().Snapshot().Counters["service.config_reloads"]; got != 1 {
		t.Fatalf("config_reloads = %d, want 1", got)
	}

	// The lowered depth gates admission immediately.
	release := make(chan struct{})
	defer close(release)
	s.build = blockingBuild(release)
	a, err := s.Submit(JobSpec{Figures: []string{"3"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)
	for _, fig := range []string{"8a", "8b"} {
		if _, err := s.Submit(JobSpec{Figures: []string{fig}}, "test"); err != nil {
			t.Fatalf("submit %s under new depth: %v", fig, err)
		}
	}
	var rej *RejectError
	if _, err := s.Submit(JobSpec{Figures: []string{"7"}}, "test"); !errors.As(err, &rej) {
		t.Fatalf("submit past reloaded depth = %v, want RejectError", err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSSEStream follows a job's event stream end to end: replayed and
// live events arrive in order and the stream closes at the terminal
// state.
func TestSSEStream(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	release := make(chan struct{})
	s.build = func(j *Job) ([]byte, error) {
		j.hub.publish(Event{Type: "progress", JobID: j.id, Key: "compile/x", Phase: "done"})
		<-release
		return []byte("{\"ok\":true}\n"), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a, err := s.Submit(JobSpec{Figures: []string{"3"}}, "test")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	close(release)

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var seq []string
	lastSeq := int64(0)
	for _, e := range events {
		if e.Seq <= lastSeq {
			t.Fatalf("events out of order: seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Type == "state" {
			seq = append(seq, string(e.State))
		} else {
			seq = append(seq, e.Type)
		}
	}
	want := []string{"queued", "running", "progress", "done"}
	if !equalStrings(seq, want) {
		t.Fatalf("event sequence %v, want %v", seq, want)
	}
}

// TestInFlightDedup submits the same spec twice concurrently: the two
// jobs singleflight into one build.
func TestInFlightDedup(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 2})
	builds := make(chan struct{}, 8)
	release := make(chan struct{})
	s.build = func(j *Job) ([]byte, error) {
		builds <- struct{}{}
		<-release
		return []byte("{\"ok\":true}\n"), nil
	}

	spec := JobSpec{Figures: []string{"3"}}
	a, err := s.Submit(spec, "alice")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, StateRunning)
	<-builds // a's build is in flight
	b, err := s.Submit(spec, "bob")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, b, StateRunning)

	close(release)
	waitState(t, a, StateDone)
	waitState(t, b, StateDone)
	select {
	case <-builds:
		t.Fatal("identical in-flight jobs built twice")
	default:
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["service.inflight_dedup"]; got != 1 {
		t.Fatalf("inflight_dedup = %d, want 1", got)
	}
	if n, _ := s.Store().Len(); n != 1 {
		t.Fatalf("store holds %d objects, want 1", n)
	}
}

// TestHealthzAndMetrics smoke-tests the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Draining {
		t.Fatalf("healthz = %s %+v", resp.Status, health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := snap.Counters["service.jobs_accepted"]; !ok {
		t.Fatalf("metrics missing service counters: %v", snap.Counters)
	}
}

// TestSubmitRejectsBadSpecs covers the HTTP 400 path.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not-json":      "{",
		"unknown-field": `{"figures":["5"],"bogus":1}`,
		"no-figures":    `{"figures":[]}`,
		"bad-figure":    `{"figures":["12"]}`,
		"bad-schema":    `{"schema":"nope/v1","figures":["5"]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}
}
