// Package service is the resident experiment service behind cmd/lpbufd:
// an HTTP job API (submit, status, SSE progress, artifact fetch) in
// front of the internal/runner execution subsystem, a content-addressed
// artifact store keyed on (job spec, machine description) hashes, and
// queue/rate admission control. One process serves many clients: jobs
// are deduplicated three ways (byte-identical artifacts from the store,
// identical in-flight jobs through a singleflight group, and shared
// compiles/simulations through one process-wide experiments.Cache), so
// a thousand-job sweep costs little more than its distinct work.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"lpbuf/internal/experiments"
	"lpbuf/internal/machine"
	"lpbuf/internal/obs/pmu"
)

// Schema strings of the job API. JobSchema versions the request codec
// (JobSpec), StatusSchema the response codec (JobStatus); cmd/obscheck
// validates both directions.
const (
	JobSchema    = "lpbuf.job/v1"
	StatusSchema = "lpbuf.jobstatus/v1"
)

// keyVersion salts the content-address hash. Bump it whenever the
// artifact a spec produces can change for reasons the spec and machine
// fingerprint do not capture (compiler pipeline changes, artifact
// encoding changes), so stale store objects are never served.
const keyVersion = "lpbufd-key/2"

// canonicalFigures is the canonical figure order of a normalized spec.
// "encoding" and "headline" are figure-shaped for the codec even though
// the CLI spells them as standalone flags (one of the round-trip
// asymmetries between cmd/lpbuf flags and the job codec).
var canonicalFigures = []string{"3", "5", "7", "8a", "8b", "encoding", "headline", "shootout"}

// defaultFig5Sizes mirrors cmd/lpbuf's Figure 5 sweep.
var defaultFig5Sizes = []int{16, 32, 64}

// JobSpec is the lpbuf.job/v1 request: which figures to regenerate and
// under what sweeps. It deliberately mirrors cmd/lpbuf's flags — the
// CLI's -submit mode and the service share this one codec — and it
// normalizes to a canonical form (sorted deduplicated figures, explicit
// sweep sizes, "all" expanded) so equal work always hashes to the same
// content-address key regardless of how the caller spelled it.
type JobSpec struct {
	Schema string `json:"schema"`
	// Figures lists experiments to run: "3", "5", "7", "8a", "8b",
	// "encoding", "headline", or "all".
	Figures []string `json:"figures"`
	// Fig7Sizes overrides the Figure 7 buffer sweep (operations).
	// Empty means the paper's sweep. Ignored unless "7" is requested.
	Fig7Sizes []int `json:"fig7_sizes,omitempty"`
	// Fig5Sizes overrides the Figure 5 buffer sizes. Empty means the
	// paper's 16/32/64. Ignored unless "5" is requested.
	Fig5Sizes []int `json:"fig5_sizes,omitempty"`
	// Verify enables internal/verify phase checkpoints on every compile
	// the job performs.
	Verify bool `json:"verify,omitempty"`
	// Client identifies the submitter for per-client admission caps.
	// Empty falls back to the connection's remote host. Excluded from
	// the content-address key: who asks does not change the answer.
	Client string `json:"client,omitempty"`
}

// SpecForFigures builds a normalized JobSpec from cmd/lpbuf-style
// figure selections.
func SpecForFigures(figures []string, verify bool) (JobSpec, error) {
	return JobSpec{Schema: JobSchema, Figures: figures, Verify: verify}.Normalized()
}

// Normalized validates the spec and returns its canonical form:
// schema pinned, figures lower-cased, deduplicated, "all" expanded and
// sorted into canonical order; sweep sizes defaulted, deduplicated,
// sorted ascending; sweeps for unrequested figures dropped. Two specs
// describing the same work normalize identically.
func (s JobSpec) Normalized() (JobSpec, error) {
	if s.Schema != "" && s.Schema != JobSchema {
		return JobSpec{}, fmt.Errorf("schema %q, want %q", s.Schema, JobSchema)
	}
	want := map[string]bool{}
	for _, f := range s.Figures {
		f = strings.ToLower(strings.TrimSpace(f))
		if f == "all" {
			for _, k := range canonicalFigures {
				want[k] = true
			}
			continue
		}
		known := false
		for _, k := range canonicalFigures {
			if f == k {
				known = true
				break
			}
		}
		if !known {
			return JobSpec{}, fmt.Errorf("unknown figure %q (known: %s, all)",
				f, strings.Join(canonicalFigures, ", "))
		}
		want[f] = true
	}
	if len(want) == 0 {
		return JobSpec{}, fmt.Errorf("no figures requested")
	}
	out := JobSpec{Schema: JobSchema, Verify: s.Verify, Client: s.Client}
	for _, k := range canonicalFigures {
		if want[k] {
			out.Figures = append(out.Figures, k)
		}
	}
	var err error
	if want["7"] {
		if out.Fig7Sizes, err = normalizeSizes(s.Fig7Sizes, experiments.BufferSizes); err != nil {
			return JobSpec{}, fmt.Errorf("fig7_sizes: %w", err)
		}
	}
	if want["5"] {
		if out.Fig5Sizes, err = normalizeSizes(s.Fig5Sizes, defaultFig5Sizes); err != nil {
			return JobSpec{}, fmt.Errorf("fig5_sizes: %w", err)
		}
	}
	return out, nil
}

// normalizeSizes defaults, deduplicates and sorts a buffer-size sweep.
func normalizeSizes(sizes, def []int) ([]int, error) {
	if len(sizes) == 0 {
		sizes = def
	}
	seen := map[int]bool{}
	var out []int
	for _, sz := range sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("buffer size %d must be positive", sz)
		}
		if seen[sz] {
			continue
		}
		seen[sz] = true
		out = append(out, sz)
	}
	sort.Ints(out)
	return out, nil
}

// MachineFingerprint hashes the modeled machine description. Jobs are
// keyed on it so a future file-loadable machine description (see
// ROADMAP) invalidates the store instead of serving another target's
// artifacts.
func MachineFingerprint() string {
	desc, err := json.Marshal(machine.Default())
	if err != nil {
		// The description is a plain struct; Marshal cannot fail, but a
		// panic here beats silently merging all machines into one key.
		panic(fmt.Sprintf("service: machine description not hashable: %v", err))
	}
	sum := sha256.Sum256(desc)
	return hex.EncodeToString(sum[:])
}

// Key content-addresses the spec: a SHA-256 over the canonical spec
// (minus Client), the machine fingerprint, the artifact schema version
// and the key-format version. Equal keys mean byte-identical artifacts;
// the store serves them without recompute.
func (s JobSpec) Key() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	n.Client = ""
	payload, err := json.Marshal(struct {
		Spec     JobSpec `json:"spec"`
		Machine  string  `json:"machine"`
		Artifact string  `json:"artifact_schema"`
		Version  string  `json:"key_version"`
	}{n, MachineFingerprint(), experiments.ArtifactSchema, keyVersion})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}

// State is a job's lifecycle phase.
type State string

// The job states. Queued jobs wait for a worker slot; a drain cancels
// them. Running jobs always finish in done, failed or canceled.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// valid reports whether s is one of the defined states.
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// JobStatus is the lpbuf.jobstatus/v1 response: one job's identity,
// lifecycle and outcome. Timestamps are RFC 3339 with nanoseconds.
type JobStatus struct {
	Schema string  `json:"schema"`
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Key    string  `json:"key"`
	Spec   JobSpec `json:"spec"`
	// CacheHit marks an artifact served from the content-addressed
	// store without recompute.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Shared marks a job that piggybacked on an identical in-flight
	// job's execution (singleflight dedupe).
	Shared     bool   `json:"shared,omitempty"`
	Error      string `json:"error,omitempty"`
	QueuedAt   string `json:"queued_at,omitempty"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
	// ArtifactURL is the relative fetch path once State is done.
	ArtifactURL string `json:"artifact_url,omitempty"`
	// TraceID is the trace context the job runs under — client-propagated
	// via the X-Lpbuf-Trace header or generated at admission. The job's
	// span tree carries it as the root span's trace_id attribute.
	TraceID string `json:"trace_id,omitempty"`
	// TraceURL is the relative path of the job's Perfetto span tree.
	TraceURL string `json:"trace_url,omitempty"`
	// SimProfileURL is the relative path of the job's sampled guest-PMU
	// profile (lpbuf.simprofile/v1), present only when this job's own
	// build executed simulations (store hits and dedup followers did not).
	SimProfileURL string `json:"simprofile_url,omitempty"`
	// Sampling is the PMU sampling configuration the profile was taken
	// under, recorded so profile consumers know the period and seed.
	Sampling *pmu.Config `json:"sampling,omitempty"`
	// Resources is the job's resource accounting, filled at the terminal
	// state.
	Resources *JobResources `json:"resources,omitempty"`
}

// JobResources is one job's resource accounting. CPU time and
// allocations are process-wide deltas sampled around the job's
// execution window — exact when the job ran alone, an upper bound when
// other jobs overlapped it — and are omitted for jobs served without a
// build (store hits, canceled-before-start).
type JobResources struct {
	// WallMS is time from start of execution to the terminal state.
	WallMS float64 `json:"wall_ms"`
	// QueueMS is time spent waiting for a worker slot.
	QueueMS float64 `json:"queue_ms,omitempty"`
	// CPUMS is process CPU time (user+system) consumed across the
	// execution window.
	CPUMS float64 `json:"cpu_ms,omitempty"`
	// AllocBytes is heap allocated across the execution window.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Provenance records how the artifact was produced: "computed",
	// "store-hit" or "inflight-dedup" (same vocabulary as the
	// X-Lpbuf-Cache response header).
	Provenance string `json:"provenance,omitempty"`
}

// Validate checks a decoded JobStatus (obscheck's response-direction
// gate).
func (st JobStatus) Validate() error {
	if st.Schema != StatusSchema {
		return fmt.Errorf("schema %q, want %q", st.Schema, StatusSchema)
	}
	if st.ID == "" {
		return fmt.Errorf("missing job id")
	}
	if !st.State.valid() {
		return fmt.Errorf("unknown state %q", st.State)
	}
	if len(st.Key) != sha256.Size*2 {
		return fmt.Errorf("key %q is not a sha256 hex digest", st.Key)
	}
	if _, err := hex.DecodeString(st.Key); err != nil {
		return fmt.Errorf("key %q is not hex: %v", st.Key, err)
	}
	if _, err := st.Spec.Normalized(); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if st.State == StateDone && st.ArtifactURL == "" {
		return fmt.Errorf("done without artifact_url")
	}
	if st.State == StateFailed && st.Error == "" {
		return fmt.Errorf("failed without error")
	}
	if st.Sampling != nil && st.Sampling.Period < 0 {
		return fmt.Errorf("negative sampling period %d", st.Sampling.Period)
	}
	if r := st.Resources; r != nil {
		if r.WallMS < 0 || r.QueueMS < 0 || r.CPUMS < 0 || r.AllocBytes < 0 {
			return fmt.Errorf("negative resource accounting: %+v", *r)
		}
		switch r.Provenance {
		case "", "computed", "store-hit", "inflight-dedup":
		default:
			return fmt.Errorf("unknown provenance %q", r.Provenance)
		}
	}
	return nil
}
