package service

import (
	"reflect"
	"testing"
)

func TestNormalizedCanonicalizes(t *testing.T) {
	// Differently-spelled requests for the same work must normalize
	// identically: case, order, duplicates and explicit defaults all
	// wash out.
	a, err := JobSpec{Figures: []string{"8A", "5", "5", "3"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Schema: JobSchema, Figures: []string{"3", "5", "8a"},
		Fig5Sizes: []int{64, 16, 32, 16}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equivalent specs normalized differently:\n%+v\n%+v", a, b)
	}
	if want := []string{"3", "5", "8a"}; !reflect.DeepEqual(a.Figures, want) {
		t.Fatalf("figures = %v, want %v", a.Figures, want)
	}
	if want := []int{16, 32, 64}; !reflect.DeepEqual(a.Fig5Sizes, want) {
		t.Fatalf("fig5 sizes = %v, want %v (paper defaults)", a.Fig5Sizes, want)
	}
}

func TestNormalizedExpandsAll(t *testing.T) {
	s, err := JobSpec{Figures: []string{"all"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Figures, canonicalFigures) {
		t.Fatalf("all expanded to %v, want %v", s.Figures, canonicalFigures)
	}
	if len(s.Fig7Sizes) == 0 || len(s.Fig5Sizes) == 0 {
		t.Fatalf("all must pin explicit sweeps, got fig7=%v fig5=%v", s.Fig7Sizes, s.Fig5Sizes)
	}
}

func TestNormalizedDropsUnrequestedSweeps(t *testing.T) {
	s, err := JobSpec{Figures: []string{"3"}, Fig7Sizes: []int{8}, Fig5Sizes: []int{8}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.Fig7Sizes != nil || s.Fig5Sizes != nil {
		t.Fatalf("sweeps for unrequested figures survived: %+v", s)
	}
}

func TestNormalizedRejects(t *testing.T) {
	for _, spec := range []JobSpec{
		{},                       // no figures
		{Figures: []string{"9"}}, // unknown figure
		{Schema: "bogus/v9", Figures: []string{"5"}},   // wrong schema
		{Figures: []string{"5"}, Fig5Sizes: []int{0}},  // non-positive size
		{Figures: []string{"7"}, Fig7Sizes: []int{-4}}, // non-positive size
	} {
		if _, err := spec.Normalized(); err == nil {
			t.Errorf("spec %+v normalized without error", spec)
		}
	}
}

func TestKeyStableAndClientIndependent(t *testing.T) {
	k1, err := JobSpec{Figures: []string{"5", "3"}, Client: "alice"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := JobSpec{Figures: []string{"3", "5", "5"}, Client: "bob"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same work keyed differently: %s vs %s (client must not affect the key)", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
	k3, err := JobSpec{Figures: []string{"3", "5"}, Verify: true}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("verify flag did not change the key; verified and unverified artifacts would collide")
	}
}

func TestStatusValidate(t *testing.T) {
	key, err := JobSpec{Figures: []string{"5"}}.Key()
	if err != nil {
		t.Fatal(err)
	}
	good := JobStatus{
		Schema: StatusSchema, ID: "job-000001", State: StateDone, Key: key,
		Spec:        JobSpec{Schema: JobSchema, Figures: []string{"5"}, Fig5Sizes: []int{16, 32, 64}},
		ArtifactURL: "/v1/jobs/job-000001/artifact",
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid status rejected: %v", err)
	}
	for name, mutate := range map[string]func(*JobStatus){
		"schema":          func(s *JobStatus) { s.Schema = "nope" },
		"id":              func(s *JobStatus) { s.ID = "" },
		"state":           func(s *JobStatus) { s.State = "exploded" },
		"key":             func(s *JobStatus) { s.Key = "abc" },
		"spec":            func(s *JobStatus) { s.Spec.Figures = nil },
		"done-no-url":     func(s *JobStatus) { s.ArtifactURL = "" },
		"failed-no-error": func(s *JobStatus) { s.State = StateFailed; s.ArtifactURL = "" },
	} {
		bad := good
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid status accepted", name)
		}
	}
}
