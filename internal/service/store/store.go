// Package store is lpbufd's content-addressed artifact store: immutable
// JSON artifacts on disk, addressed by the SHA-256 job key computed in
// internal/service. Writes are atomic (temp file + rename into place)
// and first-write-wins, so a key's bytes never change once stored —
// concurrent writers, crashed processes and repeated jobs all converge
// on one byte-exact object, and readers never observe a partial file.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotFound reports a key with no stored object.
var ErrNotFound = errors.New("store: object not found")

// objectSuffix is appended to object file names; artifacts are JSON.
const objectSuffix = ".json"

// Store is a directory-backed object store. Layout:
//
//	<dir>/objects/<key[:2]>/<key>.json   one immutable object per key
//	<dir>/tmp/                           staging for atomic writes
//
// The two-character fan-out keeps directories small under large
// sweeps. All methods are safe for concurrent use (atomicity comes
// from the filesystem, not locks).
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// validKey requires a lower-case hex SHA-256 digest, which keeps object
// paths safe by construction.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// objectPath maps a key to its on-disk location.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+objectSuffix)
}

// Get returns the stored bytes for key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	data, err := os.ReadFile(s.objectPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

// Has reports whether key is stored.
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.objectPath(key))
	return err == nil
}

// Put stores data under key. The write is atomic: data lands in tmp/
// and is renamed into place, so readers only ever see complete
// objects. If the key already exists the existing object wins — the
// store is content-addressed, so an existing object is by definition
// the same bytes, and keeping it preserves byte-identity for readers
// holding its path.
func (s *Store) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if len(data) == 0 {
		return fmt.Errorf("store: refusing to store empty object %s", key)
	}
	dst := s.objectPath(key)
	if _, err := os.Stat(dst); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Keys lists every stored key, sorted.
func (s *Store) Keys() ([]string, error) {
	var keys []string
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasSuffix(name, objectSuffix) {
			keys = append(keys, strings.TrimSuffix(name, objectSuffix))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Len counts stored objects.
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// Check verifies store consistency: every object sits in its fan-out
// directory under a valid key name and is non-empty (atomic writes
// never leave a truncated object; an empty or misplaced file means
// outside interference). Leftover tmp files are reported too — after a
// graceful drain there must be none.
func (s *Store) Check() error {
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !strings.HasSuffix(name, objectSuffix) {
			return fmt.Errorf("store: foreign file %s", path)
		}
		key := strings.TrimSuffix(name, objectSuffix)
		if !validKey(key) {
			return fmt.Errorf("store: invalid object name %s", path)
		}
		if filepath.Base(filepath.Dir(path)) != key[:2] {
			return fmt.Errorf("store: object %s outside its fan-out directory", path)
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Size() == 0 {
			return fmt.Errorf("store: empty object %s", path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	tmps, err := os.ReadDir(filepath.Join(s.dir, "tmp"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(tmps) != 0 {
		return fmt.Errorf("store: %d leftover temp files (unclean shutdown?)", len(tmps))
	}
	return nil
}
