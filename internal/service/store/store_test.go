package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyFor(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(`{"schema":"lpbuf.artifact/v1"}` + "\n")
	key := keyFor(data)
	if s.Has(key) {
		t.Fatal("Has reported an object before Put")
	}
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if !s.Has(key) {
		t.Fatal("Has false after Put")
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check after Put: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(keyFor([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
}

func TestPutFirstWriteWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := []byte("first\n")
	key := keyFor(first)
	if err := s.Put(key, first); err != nil {
		t.Fatal(err)
	}
	// A second Put under the same key must not change stored bytes —
	// content addressing means "same key, same bytes", so the store
	// keeps what readers may already hold.
	if err := s.Put(key, []byte("second\n")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first) {
		t.Fatalf("second Put replaced object: got %q", got)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("not-a-key", []byte("x")); err == nil {
		t.Error("invalid key accepted")
	}
	if err := s.Put("../../../../etc/passwd", []byte("x")); err == nil {
		t.Error("path-traversal key accepted")
	}
	if err := s.Put(keyFor(nil), nil); err == nil {
		t.Error("empty object accepted")
	}
}

func TestConcurrentPutSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("concurrent\n")
	key := keyFor(data)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, data); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("Check after concurrent puts: %v", err)
	}
}

func TestKeysSorted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		data := []byte(fmt.Sprintf("object %d\n", i))
		key := keyFor(data)
		want = append(want, key)
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %d entries, want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("ok\n")
	key := keyFor(data)
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}

	// A foreign file in objects/ is outside interference.
	foreign := filepath.Join(dir, "objects", key[:2], "notes.txt")
	if err := os.WriteFile(foreign, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err == nil {
		t.Error("Check missed foreign file")
	}
	os.Remove(foreign)

	// A truncated object can't come from an atomic write.
	if err := os.Truncate(filepath.Join(dir, "objects", key[:2], key+".json"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err == nil {
		t.Error("Check missed empty object")
	}
}

func TestCheckCatchesLeftoverTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp", "orphan"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err == nil {
		t.Error("Check missed leftover temp file")
	}
}
