package verify

import (
	"sort"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
	"lpbuf/internal/predicate"
	"lpbuf/internal/sched"
)

// Code checks machine-resource legality and EQ-model timing of a
// scheduled program: slot ranges and unit assignment, branch-target
// resolution, per-section op multiplicity (including the software
// pipeline's prologue/kernel/epilogue accounting), dependence timing of
// straight sections against a freshly rebuilt DAG, and slot-predication
// sensitivity-bit consistency.
func Code(phase string, code *sched.Code) []Violation {
	c := &checker{phase: phase}
	names := make([]string, 0, len(code.Funcs))
	for n := range code.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		checkFuncCode(c, code, code.Funcs[n])
	}
	return note(c.vs)
}

func checkFuncCode(c *checker, code *sched.Code, fc *sched.FuncCode) {
	name := fc.F.Name
	mach := code.Mach

	// Machine-resource legality, bundle by bundle: every op in a slot
	// that exists, provides its unit class, and is not double-booked;
	// issue width bounded by construction; at most one branch-unit op
	// per cycle (the machine descriptions have a single branch slot).
	for bi, b := range fc.Bundles {
		seen := map[int]bool{}
		branchUnits := 0
		for _, so := range b.Ops {
			if so.Op == nil {
				c.add(name, 0, 0, "resource", "bundle %d: scheduled slot with no op", bi)
				continue
			}
			if so.Slot < 0 || so.Slot >= mach.Width() {
				c.add(name, 0, so.Op.ID, "resource",
					"bundle %d: slot %d outside issue width %d", bi, so.Slot, mach.Width())
				continue
			}
			if seen[so.Slot] {
				c.add(name, 0, so.Op.ID, "resource",
					"bundle %d: slot %d double-booked", bi, so.Slot)
			}
			seen[so.Slot] = true
			cls := ir.UnitFor(so.Op)
			if !mach.Slots[so.Slot].Has(cls) {
				c.add(name, 0, so.Op.ID, "resource",
					"bundle %d: %s needs unit %s, slot %d lacks it", bi, so.Op.Opcode, cls, so.Slot)
			}
			if cls == machine.UnitBranch {
				branchUnits++
			}
			if so.Op.IsBranch() && (so.TargetBundle < 0 || so.TargetBundle >= len(fc.Bundles)) {
				c.add(name, 0, so.Op.ID, "branch-target",
					"bundle %d: branch target bundle %d outside [0,%d)", bi, so.TargetBundle, len(fc.Bundles))
			}
		}
		if max := mach.CountFor(machine.UnitBranch); branchUnits > max {
			c.add(name, 0, 0, "resource",
				"bundle %d: %d branch-unit ops exceed %d branch slot(s)", bi, branchUnits, max)
		}
	}

	alias := sched.AnalyzeAlias(code.Prog, fc.F)
	for si, sec := range fc.Sections {
		switch sec.Kind {
		case sched.KindStraight:
			checkStraightSection(c, code, fc, sec, alias)
		case sched.KindKernel:
			var pro, epi *sched.BlockCode
			if si > 0 && fc.Sections[si-1].Kind == sched.KindPrologue &&
				fc.Sections[si-1].Block == sec.Block {
				pro = fc.Sections[si-1]
			}
			if si+1 < len(fc.Sections) && fc.Sections[si+1].Kind == sched.KindEpilogue &&
				fc.Sections[si+1].Block == sec.Block {
				epi = fc.Sections[si+1]
			}
			checkModuloGroup(c, fc, pro, sec, epi)
		case sched.KindPrologue:
			if si+1 >= len(fc.Sections) || fc.Sections[si+1].Kind != sched.KindKernel ||
				fc.Sections[si+1].Block != sec.Block {
				c.add(name, sec.Block, 0, "pipeline", "prologue not followed by its kernel")
			}
		case sched.KindEpilogue:
			if si == 0 || fc.Sections[si-1].Kind != sched.KindKernel ||
				fc.Sections[si-1].Block != sec.Block {
				c.add(name, sec.Block, 0, "pipeline", "epilogue not preceded by its kernel")
			}
		}
		checkSlotPredication(c, mach, fc, sec)
	}
}

// checkStraightSection verifies a list-scheduled block: the section
// holds exactly the block's ops, branch targets resolve to their
// blocks' start bundles, every same-iteration dependence edge of a
// freshly rebuilt DAG is honored by the bundle placement, and the
// section is long enough for every write to land before control falls
// past it (the EQ model has no interlocks, so the schedule itself must
// drain).
func checkStraightSection(c *checker, code *sched.Code, fc *sched.FuncCode,
	sec *sched.BlockCode, alias *sched.AliasInfo) {

	name := fc.F.Name
	blk := fc.F.Block(sec.Block)
	if blk == nil {
		c.add(name, sec.Block, 0, "section", "section for missing block")
		return
	}
	cyc := map[*ir.Op]int{}
	count := map[*ir.Op]int{}
	scheduled := 0
	for i, b := range sec.Bundles {
		for _, so := range b.Ops {
			count[so.Op]++
			cyc[so.Op] = i
			scheduled++
			if so.Op.IsBranch() {
				if want, ok := fc.Start[so.Op.Target]; !ok || so.TargetBundle != want {
					c.add(name, sec.Block, so.Op.ID, "branch-target",
						"branch to B%d resolved to bundle %d, block starts at %d",
						so.Op.Target, so.TargetBundle, want)
				}
			}
		}
	}
	clean := true
	for _, op := range blk.Ops {
		if count[op] != 1 {
			c.add(name, sec.Block, op.ID, "op-multiplicity",
				"block op scheduled %d times in its section", count[op])
			clean = false
		}
	}
	if scheduled != len(blk.Ops) {
		c.add(name, sec.Block, 0, "op-multiplicity",
			"section holds %d ops, block has %d", scheduled, len(blk.Ops))
		clean = false
	}
	if !clean {
		return // timing is meaningless without the op set
	}

	selfLoop := false
	if last := blk.LastOp(); last != nil && last.IsBranch() && last.Target == blk.ID {
		selfLoop = true
	}
	d := sched.BuildDAG(blk.Ops, code.Mach, alias, selfLoop)
	for i, edges := range d.Succs {
		for _, e := range edges {
			if e.Dist != 0 {
				continue
			}
			if cyc[d.Ops[e.To]] < cyc[d.Ops[i]]+e.Lat {
				c.add(name, sec.Block, d.Ops[e.To].ID, "timing",
					"op at cycle %d violates dependence on op %d at cycle %d (lat %d)",
					cyc[d.Ops[e.To]], d.Ops[i].ID, cyc[d.Ops[i]], e.Lat)
			}
		}
	}
	for _, op := range blk.Ops {
		need := cyc[op] + 1
		if len(op.Dest) > 0 || op.IsPredDefine() {
			if v := cyc[op] + ir.LatencyOf(op, code.Mach.Latency); v > need {
				need = v
			}
		}
		if len(sec.Bundles) < need {
			c.add(name, sec.Block, op.ID, "drain",
				"write lands at cycle %d, section is %d bundles", need, len(sec.Bundles))
		}
	}
}

// checkModuloGroup verifies the software pipeline's section accounting
// for one pipelined loop: the kernel holds every body op exactly once
// plus its loop-back branch in the last bundle targeting the kernel
// start, and across prologue+epilogue each body op appears exactly
// Stages-1 times (stage s fills passes s..S-2 of the prologue and the
// first s passes of the epilogue). Prologue and epilogue contain no
// branches. Timing inside the kernel is covered by the differential
// oracle — the modulo schedule's stage assignment is not recoverable
// from bundles alone (see VERIFY.md).
func checkModuloGroup(c *checker, fc *sched.FuncCode, pro, ker, epi *sched.BlockCode) {
	name := fc.F.Name
	blk := fc.F.Block(ker.Block)
	if blk == nil {
		c.add(name, ker.Block, 0, "pipeline", "kernel for missing block")
		return
	}
	last := blk.LastOp()
	if last == nil || last.Opcode != ir.OpBrCLoop {
		c.add(name, ker.Block, 0, "pipeline", "pipelined block does not end in br.cloop")
		return
	}
	S, II := ker.Stages, ker.II
	if S <= 0 || II <= 0 || len(ker.Bundles) != II {
		c.add(name, ker.Block, 0, "pipeline",
			"kernel has %d bundles for II=%d stages=%d", len(ker.Bundles), II, S)
		return
	}
	body := blk.Ops[:len(blk.Ops)-1]

	sectionCounts := func(sec *sched.BlockCode) (map[*ir.Op]int, int) {
		n := 0
		m := map[*ir.Op]int{}
		if sec == nil {
			return m, 0
		}
		for _, b := range sec.Bundles {
			for _, so := range b.Ops {
				m[so.Op]++
				n++
			}
		}
		return m, n
	}
	kc, kn := sectionCounts(ker)
	pc, pn := sectionCounts(pro)
	ec, en := sectionCounts(epi)

	for _, op := range body {
		if kc[op] != 1 {
			c.add(name, ker.Block, op.ID, "op-multiplicity",
				"body op appears %d times in kernel", kc[op])
		}
		if got := pc[op] + ec[op]; got != S-1 {
			c.add(name, ker.Block, op.ID, "op-multiplicity",
				"body op appears %d times across prologue+epilogue, want stages-1 = %d",
				got, S-1)
		}
	}
	if kn != len(body)+1 {
		c.add(name, ker.Block, 0, "op-multiplicity",
			"kernel holds %d ops, want %d body ops + loop-back", kn, len(body))
	}
	if pn+en != (S-1)*len(body) {
		c.add(name, ker.Block, 0, "op-multiplicity",
			"prologue+epilogue hold %d ops, want (stages-1)*body = %d", pn+en, (S-1)*len(body))
	}

	// Loop-back branch: exactly once, in the kernel's last bundle,
	// targeting the kernel start.
	found := false
	for bi, b := range ker.Bundles {
		for _, so := range b.Ops {
			if so.Op != last {
				continue
			}
			found = true
			if bi != II-1 {
				c.add(name, ker.Block, last.ID, "pipeline",
					"loop-back in kernel bundle %d, want %d", bi, II-1)
			}
			if so.TargetBundle != ker.Start {
				c.add(name, ker.Block, last.ID, "branch-target",
					"kernel loop-back targets bundle %d, kernel starts at %d",
					so.TargetBundle, ker.Start)
			}
		}
	}
	if !found {
		c.add(name, ker.Block, last.ID, "pipeline", "kernel missing its loop-back branch")
	}

	if S > 1 {
		if pro == nil {
			c.add(name, ker.Block, 0, "pipeline", "stages=%d kernel has no prologue", S)
		} else if len(pro.Bundles) != (S-1)*II {
			c.add(name, ker.Block, 0, "pipeline",
				"prologue has %d bundles, want (stages-1)*II = %d", len(pro.Bundles), (S-1)*II)
		}
		if epi == nil {
			c.add(name, ker.Block, 0, "pipeline", "stages=%d kernel has no epilogue", S)
		} else if len(epi.Bundles) < (S-1)*II {
			c.add(name, ker.Block, 0, "pipeline",
				"epilogue has %d bundles, want at least (stages-1)*II = %d",
				len(epi.Bundles), (S-1)*II)
		}
	}
	for _, sec := range []*sched.BlockCode{pro, epi} {
		if sec == nil {
			continue
		}
		for _, b := range sec.Bundles {
			for _, so := range b.Ops {
				if so.Op.IsBranch() {
					c.add(name, ker.Block, so.Op.ID, "pipeline",
						"branch scheduled in a %v section", sec.Kind)
				}
			}
		}
	}
}

// checkSlotPredication validates a section's predication against the
// Section 4.2 slot-based binding model: BindSlots must see exactly the
// section's guarded ops as sensitivity-bit carriers and its predicate
// defines as defines, and every guarded op's issue slot must be among
// the slots its guard predicate is bound to. (Whether the binding fits
// the machine's standing-predicate slots without replica defines is a
// cost question, reported by the encoding experiments, not a legality
// question — so res.OK is deliberately not checked.)
func checkSlotPredication(c *checker, mach *machine.Desc, fc *sched.FuncCode, sec *sched.BlockCode) {
	var sops []predicate.SchedOp
	guarded, defines := 0, 0
	for i, b := range sec.Bundles {
		for _, so := range b.Ops {
			sops = append(sops, predicate.SchedOp{Op: so.Op, Cycle: i, Slot: so.Slot})
			if so.Op.Guard != 0 {
				guarded++
			}
			if so.Op.IsPredDefine() {
				defines++
			}
		}
	}
	if len(sops) == 0 {
		return
	}
	res := predicate.BindSlots(sops, mach.PredSlots)
	name := fc.F.Name
	if res.Sensitive != guarded {
		c.add(name, sec.Block, 0, "slot-pred",
			"binding sees %d sensitivity bits, section has %d guarded ops", res.Sensitive, guarded)
	}
	if res.Defines != defines {
		c.add(name, sec.Block, 0, "slot-pred",
			"binding sees %d defines, section has %d", res.Defines, defines)
	}
	for _, so := range sops {
		if so.Op.Guard == 0 {
			continue
		}
		ok := false
		for _, s := range res.SlotsOf[so.Op.Guard] {
			if s == so.Slot {
				ok = true
			}
		}
		if !ok {
			c.add(name, sec.Block, so.Op.ID, "slot-pred",
				"guarded op in slot %d not covered by %s's bound slots %v",
				so.Slot, so.Op.Guard, res.SlotsOf[so.Op.Guard])
		}
	}
}
