package verify

import (
	"lpbuf/internal/ir"
)

// bitset is a fixed-size bit vector used by the must-defined analysis.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

// and intersects t into s and reports whether s changed.
func (s bitset) and(t bitset) bool {
	changed := false
	for i := range s {
		if n := s[i] & t[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) clone() bitset {
	c := make(bitset, len(s))
	copy(c, s)
	return c
}

// defState is the must-defined fact at one program point: registers and
// predicates guaranteed written on every path from the entry. A guarded
// definition counts as a definition — HPL-PD predicated code routinely
// initializes a value under p and reads it under a predicate implying
// p, which a stricter analysis would reject — so the property proven is
// "defined on every path by *some* op", which still catches reads of
// registers no path ever writes.
type defState struct {
	regs, preds bitset
}

// checkMustDefined runs a forward edge-sensitive must-defined dataflow
// over f's CFG and reports three invariant classes: register reads
// before any definition, guard predicates used before any define, and
// or/and-type (wired-or / wired-and) predicate contributions with no
// dominating ut/uf/ct/cf initializer. Side-exit branches flow the state
// at the branch point (not the block end) to their targets.
func checkMustDefined(c *checker, f *ir.Func) {
	nr := int(f.NumRegs())
	np := int(f.NumPreds())

	in := map[ir.BlockID]*defState{}
	entry := &defState{regs: newBitset(nr), preds: newBitset(np)}
	for _, p := range f.Params {
		if p > 0 && int(p) < nr {
			entry.regs.set(int(p))
		}
	}
	in[f.Entry] = entry

	// meet intersects an edge state into in[t]; unreached blocks adopt
	// the first incoming state (top = all-defined for absent preds).
	meet := func(t ir.BlockID, st *defState) bool {
		cur := in[t]
		if cur == nil {
			in[t] = &defState{regs: st.regs.clone(), preds: st.preds.clone()}
			return true
		}
		ch := cur.regs.and(st.regs)
		if cur.preds.and(st.preds) {
			ch = true
		}
		return ch
	}

	// transfer walks a block from state st. When report is set it emits
	// violations; otherwise it propagates edge states and reports
	// whether any successor's in-state changed.
	transfer := func(b *ir.Block, st *defState, report bool) bool {
		cur := &defState{regs: st.regs.clone(), preds: st.preds.clone()}
		changed := false
		for _, op := range b.Ops {
			if report {
				for _, s := range op.Src {
					if s > 0 && int(s) < nr && !cur.regs.has(int(s)) {
						c.add(f.Name, b.ID, op.ID, "def-before-use",
							"%s read but not defined on every path", s)
					}
				}
				if g := op.Guard; g > 0 && int(g) < np && !cur.preds.has(int(g)) {
					c.add(f.Name, b.ID, op.ID, "guard-defined",
						"guard %s used but not defined on every path", g)
				}
			}
			for _, pd := range op.PredDefines() {
				if pd.Pred <= 0 || int(pd.Pred) >= np {
					continue
				}
				switch pd.Type {
				case ir.PTOT, ir.PTOF, ir.PTAT, ir.PTAF:
					// Wired-or/and defines assume an initialized
					// destination; without a ut/uf/ct/cf initializer on
					// every path the parallel-compare network reads an
					// undefined value.
					if report && !cur.preds.has(int(pd.Pred)) {
						c.add(f.Name, b.ID, op.ID, "pred-init",
							"%s-type contribution to %s with no initializing define on every path",
							pd.Type, pd.Pred)
					}
				}
				cur.preds.set(int(pd.Pred))
			}
			for _, d := range op.Dest {
				if d > 0 && int(d) < nr {
					cur.regs.set(int(d))
				}
			}
			// A side-exit or loop-back branch transfers the state as of
			// this point (including this op's own writes).
			if !report && op.IsBranch() && op.Target != 0 {
				if meet(op.Target, cur) {
					changed = true
				}
			}
		}
		if !report && b.Fall != 0 {
			if meet(b.Fall, cur) {
				changed = true
			}
		}
		return changed
	}

	for iter := 0; iter <= 4*len(f.Blocks)+64; iter++ {
		changed := false
		for _, b := range f.Blocks {
			if st := in[b.ID]; st != nil {
				if transfer(b, st, false) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, b := range f.Blocks {
		if st := in[b.ID]; st != nil {
			transfer(b, st, true)
		}
	}
}
