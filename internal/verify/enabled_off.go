//go:build !verify

package verify

// Forced reports whether the binary was built with -tags verify, which
// turns phase checkpoints on for every compile regardless of
// core.Config.Verify. This build has them opt-in only.
func Forced() bool { return false }
