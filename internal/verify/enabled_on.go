//go:build verify

package verify

// Forced reports whether the binary was built with -tags verify. This
// build has phase checkpoints on for every compile, so the whole test
// suite exercises them (the CI verify job builds this way).
func Forced() bool { return true }
