// Package gen builds small random — but always well-formed — IR
// programs for the differential oracle in internal/verify/oracle and
// for fuzzing the compile pipeline.
//
// Programs are correct by construction, never by filtering:
//
//   - every register and predicate is defined on every path before it
//     is read (the accumulator threads through all fragments);
//   - every loop has a bounded, decrementing trip counter;
//   - every memory access is masked into a scratch array, so the
//     program can never fault or clobber unrelated state;
//   - every divisor is forced odd (hence nonzero) before a div/rem.
//
// Each program is a straight-line sequence of fragments drawn from the
// shapes the paper's transformations care about: counted loops
// (br.cloop candidates and modulo-scheduling fodder), if/else diamonds
// (if-conversion), while loops with side exits (branch combining),
// hand-written ut/uf and wired-or predication (Table 2 semantics),
// sub-word and saturating arithmetic, div/rem latency holes, and a
// helper call (inlining). The same seed always yields the same
// program.
package gen

import (
	"fmt"
	"math/rand"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
)

// dataWords is the size of the scratch array every memory fragment
// indexes into (masked, so always in bounds).
const dataWords = 64

// Program generates a deterministic random program for seed.
func Program(seed int64) *ir.Program {
	g := &generator{r: rand.New(rand.NewSource(seed))}
	return g.build()
}

type generator struct {
	r    *rand.Rand
	f    *irbuild.Func
	acc  ir.Reg // always-defined accumulator threaded through fragments
	data int64  // scratch array base address
	next int    // label counter
}

func (g *generator) label(kind string) string {
	g.next++
	return fmt.Sprintf("%s%d", kind, g.next)
}

// small returns a random immediate in [1, 12].
func (g *generator) small() int64 { return int64(1 + g.r.Intn(12)) }

// trips returns a random loop trip count in [2, 9].
func (g *generator) trips() int64 { return int64(2 + g.r.Intn(8)) }

func (g *generator) build() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	init := make([]int32, dataWords)
	for i := range init {
		init[i] = int32(g.r.Intn(2048) - 1024)
	}
	g.data = pb.GlobalW("data", dataWords, init)
	out := pb.GlobalW("out", 1, nil)

	helper := pb.Func("helper", 2, true)
	helper.Block("e")
	hr := helper.Reg()
	helper.MulI(hr, helper.Param(0), 3)
	helper.Add(hr, hr, helper.Param(1))
	ht := helper.Reg()
	helper.ShrI(ht, helper.Param(0), 2)
	helper.Xor(hr, hr, ht)
	helper.Ret(hr)

	g.f = pb.Func("main", 0, true)
	g.f.Block("entry")
	g.acc = g.f.Reg()
	g.f.MovI(g.acc, int64(g.r.Intn(200)))

	fragments := []func(){
		g.countedLoop, g.diamond, g.whileLoop, g.predicated,
		g.sideExitLoop, g.memory, g.saturating, g.divRem, g.call,
	}
	n := 3 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		fragments[g.r.Intn(len(fragments))]()
	}

	// Make the result architecturally visible in memory as well as in
	// the return value, so the oracle compares both channels.
	base := g.f.Const(out)
	g.f.StW(base, 0, g.acc)
	g.f.Ret(g.acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// mutate applies one random always-defined update to acc.
func (g *generator) mutate() {
	switch g.r.Intn(6) {
	case 0:
		g.f.AddI(g.acc, g.acc, g.small())
	case 1:
		g.f.SubI(g.acc, g.acc, g.small())
	case 2:
		g.f.MulI(g.acc, g.acc, 1+g.r.Int63n(3))
	case 3:
		g.f.XorI(g.acc, g.acc, g.small())
	case 4:
		t := g.f.Reg()
		g.f.ShlI(t, g.acc, 1+g.r.Int63n(3))
		g.f.Add(g.acc, g.acc, t)
	case 5:
		g.f.AndI(g.acc, g.acc, 0xFFFF)
	}
}

// countedLoop emits a br.cloop-style loop: fixed trip count, loop-back
// as the only branch. Prime modulo-scheduling material.
func (g *generator) countedLoop() {
	body, done := g.label("cl"), g.label("cd")
	cnt := g.f.Reg()
	g.f.MovI(cnt, g.trips())
	g.f.Block(body)
	g.mutate()
	g.mutate()
	g.f.CLoop(cnt, body)
	g.f.Block(done)
}

// diamond emits an if/else both arms of which update acc — the basic
// if-conversion shape.
func (g *generator) diamond() {
	then, join := g.label("dt"), g.label("dj")
	g.f.BrI(ir.CmpGT, g.acc, int64(g.r.Intn(64)), then)
	g.mutate()
	g.f.Jump(join)
	g.f.Block(then)
	g.mutate()
	g.mutate()
	g.f.Block(join)
}

// whileLoop emits a decrement-and-test loop (CLoopify candidate).
func (g *generator) whileLoop() {
	head, done := g.label("wh"), g.label("wd")
	i := g.f.Reg()
	g.f.MovI(i, g.trips())
	g.f.Block(head)
	g.mutate()
	g.f.SubI(i, i, 1)
	g.f.BrI(ir.CmpGT, i, 0, head)
	g.f.Block(done)
}

// predicated emits hand-written predication: a ut/uf pair off one
// compare, and optionally a wired-or chain with an explicit false
// initializer (the Table 2 shapes the verifier audits).
func (g *generator) predicated() {
	p := g.f.F.NewPred()
	q := g.f.F.NewPred()
	g.f.CmpPI(p, ir.PTUT, q, ir.PTUF, ir.CmpGT, g.acc, int64(g.r.Intn(100)))
	g.f.AddI(g.acc, g.acc, g.small()).Guard = p
	g.f.SubI(g.acc, g.acc, g.small()).Guard = q
	if g.r.Intn(2) == 0 {
		// or-chain: init false, then two wired-or contributions.
		o := g.f.F.NewPred()
		zero := g.f.Const(0)
		g.f.CmpPI(o, ir.PTUT, 0, ir.PTNone, ir.CmpNE, zero, 0)
		g.f.CmpPI(o, ir.PTOT, 0, ir.PTNone, ir.CmpLT, g.acc, g.small())
		g.f.CmpPI(o, ir.PTOT, 0, ir.PTNone, ir.CmpGT, g.acc, 64+g.small())
		g.f.XorI(g.acc, g.acc, 1).Guard = o
	}
}

// sideExitLoop emits a bounded loop with an early exit — the shape
// branch combining (Section 3) targets.
func (g *generator) sideExitLoop() {
	head, exit := g.label("sh"), g.label("sx")
	i := g.f.Reg()
	g.f.MovI(i, g.trips())
	g.f.Block(head)
	t := g.f.Reg()
	g.f.AndI(t, g.acc, 7)
	g.f.BrI(ir.CmpEQ, t, int64(g.r.Intn(8)), exit)
	g.mutate()
	g.f.SubI(i, i, 1)
	g.f.BrI(ir.CmpGT, i, 0, head)
	g.f.Block(exit)
}

// memory emits a masked load/compute/store round trip, sometimes at
// sub-word width.
func (g *generator) memory() {
	off := g.f.Reg()
	base := g.f.Reg()
	v := g.f.Reg()
	switch g.r.Intn(3) {
	case 0: // word
		g.f.AndI(off, g.acc, int64(dataWords-1)*4&^3)
		g.f.AddI(base, off, g.data)
		g.f.LdW(v, base, 0)
		g.f.Add(g.acc, g.acc, v)
		g.f.StW(base, 0, g.acc)
	case 1: // halfword
		g.f.AndI(off, g.acc, int64(dataWords*4-2)&^1)
		g.f.AddI(base, off, g.data)
		if g.r.Intn(2) == 0 {
			g.f.LdH(v, base, 0)
		} else {
			g.f.LdHU(v, base, 0)
		}
		g.f.Xor(g.acc, g.acc, v)
		g.f.StH(base, 0, g.acc)
	default: // byte
		g.f.AndI(off, g.acc, int64(dataWords*4-1))
		g.f.AddI(base, off, g.data)
		if g.r.Intn(2) == 0 {
			g.f.LdB(v, base, 0)
		} else {
			g.f.LdBU(v, base, 0)
		}
		g.f.Add(g.acc, g.acc, v)
		g.f.StB(base, 0, g.acc)
	}
}

// saturating emits the media-style clipped arithmetic ops.
func (g *generator) saturating() {
	k := g.f.Const(int64(g.r.Intn(1 << 14)))
	switch g.r.Intn(4) {
	case 0:
		g.f.SAdd16(g.acc, g.acc, k)
	case 1:
		g.f.SSub16(g.acc, g.acc, k)
	case 2:
		g.f.SAdd32(g.acc, g.acc, k)
	default:
		g.f.SSub32(g.acc, g.acc, k)
	}
}

// divRem emits a long-latency div or rem with a divisor forced odd
// (nonzero by construction).
func (g *generator) divRem() {
	dv := g.f.Reg()
	g.f.OrI(dv, g.acc, 1)
	if g.r.Intn(2) == 0 {
		g.f.Div(g.acc, g.acc, dv)
	} else {
		g.f.Rem(g.acc, g.acc, dv)
	}
}

// call routes acc through the helper (inlining fodder).
func (g *generator) call() {
	arg := g.f.Const(g.small())
	d := g.f.Reg()
	g.f.Call(d, "helper", g.acc, arg)
	g.f.Mov(g.acc, d)
}
