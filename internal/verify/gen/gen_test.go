package gen_test

import (
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/verify"
	"lpbuf/internal/verify/gen"
)

// TestDeterministic: the same seed must yield the same program (the
// oracle's reproducibility contract).
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := gen.Program(seed), gen.Program(seed)
		if a.OpCount() != b.OpCount() {
			t.Fatalf("seed %d: op counts differ: %d vs %d", seed, a.OpCount(), b.OpCount())
		}
	}
}

// TestGeneratedProgramsValid: every generated program passes the full
// IR invariant set and terminates under the interpreter.
func TestGeneratedProgramsValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := gen.Program(seed)
		if err := p.Verify(); err != nil {
			t.Fatalf("seed %d: structurally invalid: %v", seed, err)
		}
		if vs := verify.Program("gen", p); len(vs) > 0 {
			t.Fatalf("seed %d: invariant violations: %v", seed, verify.AsError(vs))
		}
		if _, err := interp.Run(p, interp.Options{MaxOps: 1 << 20}); err != nil {
			t.Fatalf("seed %d: does not run: %v", seed, err)
		}
	}
}
