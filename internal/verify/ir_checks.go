package verify

import (
	"sort"

	"lpbuf/internal/ir"
)

// Program checks IR-level invariants on every function of p plus the
// cross-function invariants of ir.Program.Verify.
func Program(phase string, p *ir.Program) []Violation {
	c := &checker{phase: phase}
	if err := p.Verify(); err != nil {
		c.add("", 0, 0, "structure", "%v", err)
		return note(c.vs)
	}
	for _, name := range orderedFuncs(p) {
		checkFunc(c, p, p.Funcs[name])
	}
	return note(c.vs)
}

// Func checks IR-level invariants on a single function.
func Func(phase string, p *ir.Program, f *ir.Func) []Violation {
	c := &checker{phase: phase}
	if err := f.Verify(); err != nil {
		c.add(f.Name, 0, 0, "structure", "%v", err)
		return note(c.vs)
	}
	checkFunc(c, p, f)
	return note(c.vs)
}

func orderedFuncs(p *ir.Program) []string {
	names := append([]string(nil), p.Order...)
	for n := range p.Funcs {
		found := false
		for _, o := range names {
			if o == n {
				found = true
			}
		}
		if !found {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func checkFunc(c *checker, p *ir.Program, f *ir.Func) {
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			checkShape(c, p, f, b, op)
		}
	}
	checkMustDefined(c, f)
}

// operands is the number of value operands: sources plus the trailing
// immediate when HasImm holds. Memory ops are excluded (their Imm is an
// address offset, not an operand position).
func operands(op *ir.Op) int {
	n := len(op.Src)
	if op.HasImm {
		n++
	}
	return n
}

// checkShape validates per-opcode operand shape, register-class id
// ranges, predicate-destination legality (Table 2) and speculation
// marking.
func checkShape(c *checker, p *ir.Program, f *ir.Func, b *ir.Block, op *ir.Op) {
	fail := func(rule, format string, args ...any) {
		c.add(f.Name, b.ID, op.ID, rule, format, args...)
	}

	// Register/predicate id ranges. Reg 0 and PredReg < 0 are never
	// legal operands; ids at or above the allocator bound indicate a
	// pass forged a register without NewReg/NewPred.
	for _, r := range op.Dest {
		if r <= 0 || r >= f.NumRegs() {
			fail("reg-range", "dest %s out of range [1,%d)", r, f.NumRegs())
		}
	}
	for _, r := range op.Src {
		if r <= 0 || r >= f.NumRegs() {
			fail("reg-range", "src %s out of range [1,%d)", r, f.NumRegs())
		}
	}
	if op.Guard < 0 || op.Guard >= f.NumPreds() {
		fail("pred-range", "guard %s out of range [0,%d)", op.Guard, f.NumPreds())
	}

	// Only predicate defines carry predicate destinations.
	if !op.IsPredDefine() {
		for _, pd := range op.PDest {
			if pd.Type != ir.PTNone || pd.Pred != 0 {
				fail("pdest", "%s op carries predicate destinations", op.Opcode)
				break
			}
		}
	}
	if op.Speculative && !op.IsLoad() {
		fail("speculative", "%s op marked speculative; only loads have a speculative form", op.Opcode)
	}

	switch op.Opcode {
	case ir.OpNop:
		if len(op.Dest) != 0 || operands(op) != 0 {
			fail("shape", "nop with operands")
		}
	case ir.OpMov:
		if len(op.Dest) != 1 || operands(op) != 1 {
			fail("shape", "mov wants 1 dest, 1 operand; has %d dest, %d operands",
				len(op.Dest), operands(op))
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpShrU, ir.OpMin, ir.OpMax,
		ir.OpSAdd16, ir.OpSSub16, ir.OpSAdd32, ir.OpSSub32:
		if len(op.Dest) != 1 || operands(op) != 2 {
			fail("shape", "%s wants 1 dest, 2 operands; has %d dest, %d operands",
				op.Opcode, len(op.Dest), operands(op))
		}
	case ir.OpAbs:
		if len(op.Dest) != 1 || operands(op) != 1 {
			fail("shape", "abs wants 1 dest, 1 operand")
		}
	case ir.OpCmpW:
		if len(op.Dest) != 1 || operands(op) != 2 {
			fail("shape", "cmpw wants 1 dest, 2 operands")
		}
	case ir.OpSel:
		if len(op.Dest) != 1 || operands(op) != 3 {
			fail("shape", "sel wants 1 dest, 3 operands")
		}
	case ir.OpLdB, ir.OpLdBU, ir.OpLdH, ir.OpLdHU, ir.OpLdW:
		if len(op.Dest) != 1 || len(op.Src) != 1 {
			fail("shape", "load wants 1 dest, 1 base register")
		}
	case ir.OpStB, ir.OpStH, ir.OpStW:
		if len(op.Dest) != 0 || len(op.Src) != 2 {
			fail("shape", "store wants no dest, base+value registers")
		}
	case ir.OpCmpP:
		if len(op.Dest) != 0 || operands(op) != 2 {
			fail("shape", "cmpp wants no dest, 2 operands")
		}
		checkPredDests(c, f, b, op)
	case ir.OpBr:
		if len(op.Dest) != 0 || operands(op) != 2 {
			fail("shape", "br wants no dest, 2 operands")
		}
		if op.Target == 0 {
			fail("shape", "br without target")
		}
	case ir.OpJump:
		if len(op.Dest) != 0 || operands(op) != 0 {
			fail("shape", "jump with operands")
		}
		if op.Target == 0 {
			fail("shape", "jump without target")
		}
	case ir.OpBrCLoop:
		if len(op.Dest) != 1 || len(op.Src) != 1 || op.Dest[0] != op.Src[0] {
			fail("shape", "br.cloop must read and write the same counter register")
		}
		if op.Target == 0 {
			fail("shape", "br.cloop without target")
		}
	case ir.OpCall:
		if len(op.Dest) > 1 {
			fail("shape", "call with %d dests", len(op.Dest))
		}
		if op.Callee == "" {
			fail("shape", "call without callee")
		} else if p != nil {
			if callee, ok := p.Funcs[op.Callee]; ok {
				if len(op.Src) != len(callee.Params) {
					fail("shape", "call %s passes %d args, callee wants %d",
						op.Callee, len(op.Src), len(callee.Params))
				}
			}
		}
	case ir.OpRet:
		if len(op.Dest) != 0 || len(op.Src) > 1 {
			fail("shape", "ret wants no dest and at most 1 src")
		}
	case ir.OpRecCLoop, ir.OpRecWLoop, ir.OpExecCLoop, ir.OpExecWLoop:
		if len(op.Dest) != 0 || len(op.Src) != 0 {
			fail("shape", "buffer op with register operands")
		}
		if op.BufAddr < 0 || op.BufLen <= 0 {
			fail("shape", "buffer op with addr=%d len=%d", op.BufAddr, op.BufLen)
		}
	default:
		fail("shape", "unknown opcode %d", uint8(op.Opcode))
	}
}

// checkPredDests validates a predicate define's destinations against
// Table 2: a legal type, a real predicate register in range, and no
// double-write of one predicate by a single define.
func checkPredDests(c *checker, f *ir.Func, b *ir.Block, op *ir.Op) {
	active := op.PredDefines()
	if len(active) == 0 {
		c.add(f.Name, b.ID, op.ID, "pdest", "cmpp with no destinations")
		return
	}
	seen := map[ir.PredReg]bool{}
	for _, pd := range active {
		if pd.Type < ir.PTUT || pd.Type > ir.PTCF {
			c.add(f.Name, b.ID, op.ID, "pdest", "illegal destination type %d", uint8(pd.Type))
		}
		if pd.Pred <= 0 || pd.Pred >= f.NumPreds() {
			c.add(f.Name, b.ID, op.ID, "pred-range",
				"pdest %s out of range [1,%d)", pd.Pred, f.NumPreds())
		}
		if seen[pd.Pred] {
			c.add(f.Name, b.ID, op.ID, "pdest",
				"predicate %s written twice by one define", pd.Pred)
		}
		seen[pd.Pred] = true
	}
}
