package oracle_test

import (
	"bytes"
	"fmt"
	"testing"

	"lpbuf/internal/core"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/sched"
	"lpbuf/internal/verify/gen"
)

// kernelInfo records one pipelined loop of a compiled program.
type kernelInfo struct {
	II     int
	Proven bool
}

// compileKernels compiles prog with the full aggressive pipeline under
// the given scheduler backend, runs it bit-exact against the
// interpreter reference, and returns its kernels keyed func/block.
func compileKernels(t *testing.T, prog *ir.Program, backend string) map[string]kernelInfo {
	t.Helper()
	cfg := core.Aggressive(256)
	cfg.Verify = true
	cfg.SchedBackend = backend
	c, err := core.Compile(prog.Clone(), cfg)
	if err != nil {
		t.Fatalf("%s compile: %v", backend, err)
	}
	ref, err := interp.Run(prog, interp.Options{MaxOps: 1 << 22})
	if err != nil {
		t.Fatalf("reference interp: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("%s run: %v", backend, err)
	}
	if res.Ret != ref.Ret || !bytes.Equal(res.Mem, ref.Mem) {
		t.Fatalf("%s: simulation diverged from interpreter", backend)
	}
	kernels := map[string]kernelInfo{}
	for name, fc := range c.Code.Funcs {
		for _, sec := range fc.Sections {
			if sec.Kind == sched.KindKernel {
				kernels[fmt.Sprintf("%s/B%d", name, sec.Block)] =
					kernelInfo{II: sec.II, Proven: sec.Proven}
			}
		}
	}
	return kernels
}

// TestCrossBackendCorpus is the cross-backend differential harness:
// every corpus seed is compiled with both scheduler backends, executed
// bit-exact against the interpreter, and for every loop pipelined by
// both, the exact backend's II must be <= the heuristic's. A seed
// where the heuristic wins is a bug in the optimal backend — add it to
// regressionSeeds with the failure it caught.
func TestCrossBackendCorpus(t *testing.T) {
	n := corpusSize
	if testing.Short() {
		n = 25
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkCrossBackend(t, seed)
		})
	}
}

// regressionSeeds pins seeds that once exposed a cross-backend bug
// (heuristic beating "optimal", or an optimal-only miscompile). None
// yet: the corpus run has held II(optimal) <= II(heuristic) since the
// backend landed. Keep the harness wired so the first regression gets
// a named, always-run reproduction.
var regressionSeeds = []int64{}

func TestCrossBackendRegressions(t *testing.T) {
	for _, seed := range regressionSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkCrossBackend(t, seed)
		})
	}
}

// TestCrossBackendProvenFraction asserts the acceptance bar on the
// corpus in aggregate: the exact backend must prove II minimality
// in-budget for at least 90% of the loops it pipelines, and the
// comparison must not be vacuous (the corpus does contain pipelined
// kernels).
func TestCrossBackendProvenFraction(t *testing.T) {
	n := corpusSize
	if testing.Short() {
		n = 25
	}
	kernels, proven := 0, 0
	for seed := int64(0); seed < int64(n); seed++ {
		for _, o := range compileKernels(t, gen.Program(seed), "optimal") {
			kernels++
			if o.Proven {
				proven++
			}
		}
	}
	if kernels == 0 {
		t.Fatal("corpus produced no pipelined kernels; cross-backend comparison is vacuous")
	}
	if proven*10 < kernels*9 {
		t.Errorf("minimality proven for %d/%d kernels, below the 90%% bar", proven, kernels)
	}
	t.Logf("kernels=%d proven=%d", kernels, proven)
}

func checkCrossBackend(t *testing.T, seed int64) {
	prog := gen.Program(seed)
	heur := compileKernels(t, prog, "heuristic")
	opt := compileKernels(t, prog, "optimal")
	for key, h := range heur {
		o, ok := opt[key]
		if !ok {
			// The exact backend found a smaller II whose deeper pipeline
			// failed the profitability gates (stages > trips); the loop
			// legitimately stays unpipelined there.
			continue
		}
		if o.II > h.II {
			t.Errorf("seed %d %s: optimal II %d > heuristic II %d", seed, key, o.II, h.II)
		}
		if o.Proven && o.II > h.II {
			t.Errorf("seed %d %s: II %d 'proven minimal' yet heuristic found %d",
				seed, key, o.II, h.II)
		}
	}
	for key, o := range opt {
		if h, ok := heur[key]; ok && o.Proven && h.II < o.II {
			t.Errorf("seed %d %s: proof refuted by heuristic (%d < %d)",
				seed, key, h.II, o.II)
		}
	}
}
