// Package oracle cross-checks the compile pipeline end to end: a
// generated program is compiled at every optimization level (with the
// internal/verify phase checkpoints enabled), executed on the VLIW
// cycle simulator at several buffer capacities, and every execution's
// return value and final memory must match the interpreter reference.
// A disagreement at any level localizes a miscompile to the passes
// that level enables.
package oracle

import (
	"bytes"
	"fmt"

	"lpbuf/internal/core"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
)

// BufferSizes are the capacities each compiled level is simulated at
// (a re-planned buffer assignment is itself checkpointed).
var BufferSizes = []int{16, 64, 256}

// Levels returns the optimization ladder: each rung enables strictly
// more of the pipeline, so a first-failing level implicates its new
// passes.
func Levels() []core.Config {
	o0 := core.Config{Name: "O0"} // schedule only
	o1 := core.Traditional(256)   // + inline + modulo
	o1.Name = "O1"
	o2 := core.Aggressive(256) // + transforms + predication, no modulo
	o2.Name = "O2"
	o2.Modulo = false
	o3 := core.Aggressive(256) // full pipeline
	o3.Name = "O3"
	return []core.Config{o0, o1, o2, o3}
}

// Check compiles prog at every level and asserts interpreter, VLIW
// simulation, and architectural side effects all agree. The returned
// error names the first level and buffer size that diverged.
func Check(prog *ir.Program) error { return CheckWith(prog, "") }

// CheckWith is Check with an explicit modulo-scheduler backend
// ("heuristic" or "optimal"; "" = default), so the differential
// harness and fuzzer exercise exact-backend miscompiles through the
// same oracle.
func CheckWith(prog *ir.Program, backend string) error {
	ref, err := interp.Run(prog, interp.Options{MaxOps: 1 << 22})
	if err != nil {
		return fmt.Errorf("reference interp: %w", err)
	}
	for _, cfg := range Levels() {
		cfg.Verify = true
		cfg.SchedBackend = backend
		c, err := core.Compile(prog.Clone(), cfg)
		if err != nil {
			return fmt.Errorf("%s: compile: %w", cfg.Name, err)
		}
		for _, sz := range BufferSizes {
			// core already compares each run against its own reference
			// execution; compare against ours too so a bug in core's
			// internal reference plumbing cannot mask a miscompile.
			res, err := c.RunWithBuffer(sz)
			if err != nil {
				return fmt.Errorf("%s/buf%d: %w", cfg.Name, sz, err)
			}
			if res.Ret != ref.Ret {
				return fmt.Errorf("%s/buf%d: vliw ret %d != interp ret %d",
					cfg.Name, sz, res.Ret, ref.Ret)
			}
			if !bytes.Equal(res.Mem, ref.Mem) {
				return fmt.Errorf("%s/buf%d: vliw memory differs from interp", cfg.Name, sz)
			}
		}
	}
	return nil
}
