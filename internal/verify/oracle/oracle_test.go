package oracle_test

import (
	"fmt"
	"testing"

	"lpbuf/internal/verify/gen"
	"lpbuf/internal/verify/oracle"
)

// corpusSize is the deterministic seed corpus checked on every `go
// test` run (ISSUE acceptance: 200 programs, every optimization
// level). -short trims it for quick local iteration.
const corpusSize = 200

// TestDifferentialCorpus runs the fixed corpus through the oracle:
// each seed's program is compiled at O0..O3 with verify checkpoints on
// and simulated at three buffer sizes, all against the interpreter.
func TestDifferentialCorpus(t *testing.T) {
	n := corpusSize
	if testing.Short() {
		n = 25
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := oracle.Check(gen.Program(seed)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// FuzzDifferential explores seeds beyond the fixed corpus. Every seed
// generates a valid terminating program by construction, so the fuzz
// body is just the oracle; a second fuzzed byte picks the scheduler
// backend, so the fuzzer exercises optimal-path miscompiles for free.
// Run with:
//
//	go test -run Fuzz -fuzz=FuzzDifferential -fuzztime=30s ./internal/verify/oracle
func FuzzDifferential(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1 << 32, -7} {
		f.Add(s, byte(0))
		f.Add(s, byte(1))
	}
	f.Fuzz(func(t *testing.T, seed int64, backend byte) {
		b := "heuristic"
		if backend&1 == 1 {
			b = "optimal"
		}
		if err := oracle.CheckWith(gen.Program(seed), b); err != nil {
			t.Fatalf("seed %d backend %s: %v", seed, b, err)
		}
	})
}
