package verify

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// Plan checks loop-buffer plan legality against the schedule it was
// built for: every planned loop must fit the buffer at its offset,
// cover exactly one schedule section (the replayed image is a single
// straight-line region), carry an accurate operation footprint, and
// pair its record/replay mode with the loop's branch form — kernel and
// br.cloop loops are counted (exit predicted), wloops are not.
// Overlapping placements are legal: the simulator models eviction.
func Plan(phase string, code *sched.Code, plan *vliw.BufferPlan) []Violation {
	c := &checker{phase: phase}
	if plan == nil {
		return note(c.vs)
	}
	if plan.Capacity < 0 {
		c.add("", 0, 0, "plan", "negative buffer capacity %d", plan.Capacity)
	}
	seen := map[string]bool{}
	for _, pl := range plan.Loops {
		fc := code.Funcs[pl.Func]
		if fc == nil {
			c.add(pl.Func, 0, 0, "plan", "planned loop %q in unknown function", pl.Label)
			continue
		}
		if seen[pl.Key()] {
			c.add(pl.Func, 0, 0, "plan", "duplicate planned loop %s", pl.Key())
		}
		seen[pl.Key()] = true
		if pl.StartBundle < 0 || pl.EndBundle > len(fc.Bundles) || pl.StartBundle >= pl.EndBundle {
			c.add(pl.Func, 0, 0, "plan", "loop %q bundles [%d,%d) outside schedule of %d bundles",
				pl.Label, pl.StartBundle, pl.EndBundle, len(fc.Bundles))
			continue
		}
		if pl.Ops <= 0 || pl.Offset < 0 || pl.Offset+pl.Ops > plan.Capacity {
			c.add(pl.Func, 0, 0, "capacity",
				"loop %q: %d ops at offset %d exceed buffer capacity %d",
				pl.Label, pl.Ops, pl.Offset, plan.Capacity)
		}

		var sec *sched.BlockCode
		for _, s := range fc.Sections {
			if s.Start == pl.StartBundle && s.Start+len(s.Bundles) == pl.EndBundle {
				sec = s
				break
			}
		}
		if sec == nil {
			c.add(pl.Func, 0, 0, "plan",
				"loop %q bundles [%d,%d) do not align with any schedule section",
				pl.Label, pl.StartBundle, pl.EndBundle)
			continue
		}
		n := 0
		for i := pl.StartBundle; i < pl.EndBundle; i++ {
			n += len(fc.Bundles[i].Ops)
		}
		if n != pl.Ops {
			c.add(pl.Func, sec.Block, 0, "footprint",
				"loop %q declares %d ops, section holds %d", pl.Label, pl.Ops, n)
		}
		switch sec.Kind {
		case sched.KindKernel:
			if !pl.Counted {
				c.add(pl.Func, sec.Block, 0, "counted",
					"loop %q: modulo kernel must record as a counted loop", pl.Label)
			}
		case sched.KindStraight:
			found, counted := false, false
			for _, b := range sec.Bundles {
				for _, so := range b.Ops {
					if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
						found = true
						counted = so.Op.Opcode == ir.OpBrCLoop
					}
				}
			}
			if !found {
				c.add(pl.Func, sec.Block, 0, "plan",
					"loop %q: buffered section has no loop-back branch to its start", pl.Label)
			} else if counted != pl.Counted {
				c.add(pl.Func, sec.Block, 0, "counted",
					"loop %q: counted=%v but loop-back branch says %v", pl.Label, pl.Counted, counted)
			}
		default:
			c.add(pl.Func, sec.Block, 0, "plan",
				"loop %q: buffered section has kind %d; only kernels and straight self-loops replay",
				pl.Label, sec.Kind)
		}
	}
	return note(c.vs)
}
