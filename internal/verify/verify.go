// Package verify is the compiler's phase-checkpoint static analyzer:
// after every pipeline phase it re-derives the invariants the phase
// must have preserved and reports violations instead of letting a
// miscompile surface as a silently wrong figure.
//
// Four invariant classes are checked (see VERIFY.md):
//
//   - IR well-formedness on ir.Func/ir.Program: operand shapes and
//     register-class legality per opcode, register/predicate id ranges,
//     and a must-defined dataflow analysis proving every register and
//     guard predicate is defined on every path before it is used.
//   - Predicate well-formedness: Table 2 destination-type legality,
//     or/and-type contributions only to initialized predicates, and
//     (on scheduled code) slot-predication sensitivity-bit consistency
//     against the Section 4.2 binding model.
//   - Machine-resource legality on scheduled code: slot ranges, unit
//     assignment, one op per slot, branch-target resolution, section
//     op multiplicity (including software-pipelined prologue/kernel/
//     epilogue accounting), and EQ-model timing of straight sections
//     against a freshly rebuilt dependence DAG.
//   - Loop-buffer plan legality: loops fit the buffer, offsets are in
//     range, bundle ranges align with schedule sections, and counted
//     loops pair with br.cloop loop-backs.
//
// Checkpoints are enabled per compile via core.Config.Verify, globally
// via the lpbuf -verify flag, or for a whole test run by building with
// -tags verify (see Forced).
package verify

import (
	"fmt"
	"strings"
	"sync/atomic"

	"lpbuf/internal/ir"
)

// Violation is one invariant failure found at a checkpoint.
type Violation struct {
	// Phase names the checkpoint ("post-opt", "post-sched", ...).
	Phase string
	// Func is the containing function, when applicable.
	Func string
	// Block is the containing block, 0 when not block-scoped.
	Block ir.BlockID
	// OpID is the offending operation's ID, 0 when not op-scoped.
	OpID int
	// Rule is the short invariant name ("def-before-use", ...).
	Rule string
	// Msg explains the failure.
	Msg string
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", v.Phase, v.Rule)
	if v.Func != "" {
		fmt.Fprintf(&b, " func=%s", v.Func)
	}
	if v.Block != 0 {
		fmt.Fprintf(&b, " B%d", v.Block)
	}
	if v.OpID != 0 {
		fmt.Fprintf(&b, " op=%d", v.OpID)
	}
	return b.String() + ": " + v.Msg
}

// Stats is a process-wide snapshot of checkpoint activity, reported by
// lpbuf -verify.
type Stats struct {
	Checkpoints int64
	Violations  int64
}

var (
	checkpoints atomic.Int64
	violations  atomic.Int64
)

// Snapshot returns the process-wide checkpoint counters.
func Snapshot() Stats {
	return Stats{Checkpoints: checkpoints.Load(), Violations: violations.Load()}
}

// ResetStats zeroes the process-wide counters (tests).
func ResetStats() {
	checkpoints.Store(0)
	violations.Store(0)
}

// note records one checkpoint's outcome in the global counters.
func note(vs []Violation) []Violation {
	checkpoints.Add(1)
	violations.Add(int64(len(vs)))
	return vs
}

// AsError folds violations into a single error (nil when clean). At
// most eight violations are listed; the total is always reported.
func AsError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", len(vs))
	for i, v := range vs {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... %d more", len(vs)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// checker accumulates violations for one checkpoint.
type checker struct {
	phase string
	vs    []Violation
}

func (c *checker) add(fn string, blk ir.BlockID, op int, rule, format string, args ...any) {
	c.vs = append(c.vs, Violation{Phase: c.phase, Func: fn, Block: blk, OpID: op,
		Rule: rule, Msg: fmt.Sprintf(format, args...)})
}
