package verify_test

import (
	"strings"
	"testing"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
	"lpbuf/internal/verify"
	"lpbuf/internal/vliw"
)

// TestBenchmarksCleanAtSeed: the full Table 1 suite must pass every
// IR-level invariant as written (the verifier's false-positive guard).
func TestBenchmarksCleanAtSeed(t *testing.T) {
	for _, b := range suite.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			if vs := verify.Program("seed", b.Build()); len(vs) > 0 {
				t.Fatalf("seed IR violations: %v", verify.AsError(vs))
			}
		})
	}
}

// TestCompiledBenchmarksClean drives two representative benchmarks
// through both paper configurations and checks the scheduled code and
// buffer plan (the remaining benchmarks are covered by the -tags verify
// CI run and lpbuf -verify).
func TestCompiledBenchmarksClean(t *testing.T) {
	for _, name := range []string{"adpcmenc", "g724dec"} {
		for _, cfg := range []core.Config{core.Traditional(256), core.Aggressive(256)} {
			b, ok := suite.ByName(name)
			if !ok {
				t.Fatalf("unknown benchmark %s", name)
			}
			c, err := core.Compile(b.Build(), cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cfg.Name, err)
			}
			if vs := verify.Program("post-transform", c.TransformedIR); len(vs) > 0 {
				t.Errorf("%s/%s transformed IR: %v", name, cfg.Name, verify.AsError(vs))
			}
			if vs := verify.Code("post-sched", c.Code); len(vs) > 0 {
				t.Errorf("%s/%s scheduled code: %v", name, cfg.Name, verify.AsError(vs))
			}
			if vs := verify.Plan("post-bufplan", c.Code, c.Plan); len(vs) > 0 {
				t.Errorf("%s/%s buffer plan: %v", name, cfg.Name, verify.AsError(vs))
			}
		}
	}
}

// brokenProgram builds a program seeded with one specific invariant
// violation, selected by which.
func cleanProgram() *irbuild.Program {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	a := f.Const(5)
	b := f.Reg()
	f.AddI(b, a, 3)
	f.Ret(b)
	pb.SetEntry("main")
	return pb
}

func wantRule(t *testing.T, vs []verify.Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("expected a %q violation, got: %v", rule, verify.AsError(vs))
}

func TestDetectsUseBeforeDef(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	d := f.Reg()
	u := f.Reg() // never written
	f.AddI(d, u, 1)
	f.Ret(d)
	pb.SetEntry("main")
	wantRule(t, verify.Program("t", pb.MustBuild()), "def-before-use")
}

func TestDetectsUndefinedOnOnePath(t *testing.T) {
	// x defined only on the taken path; the join reads it.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	cnd := f.Const(1)
	x := f.Reg()
	f.BrI(ir.CmpEQ, cnd, 0, "skip")
	f.MovI(x, 7)
	f.Block("skip")
	r := f.Reg()
	f.AddI(r, x, 1)
	f.Ret(r)
	pb.SetEntry("main")
	wantRule(t, verify.Program("t", pb.MustBuild()), "def-before-use")
}

func TestDetectsUndefinedGuard(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	d := f.Const(1)
	p := f.F.NewPred() // never defined
	f.AddI(d, d, 1).Guard = p
	f.Ret(d)
	pb.SetEntry("main")
	wantRule(t, verify.Program("t", pb.MustBuild()), "guard-defined")
}

func TestDetectsUninitializedOrContribution(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("e")
	a := f.Const(3)
	p := f.F.NewPred()
	// Wired-or contribution with no ut/uf initializer on the path.
	f.CmpPI(p, ir.PTOT, 0, ir.PTNone, ir.CmpGT, a, 1)
	d := f.Const(0)
	f.AddI(d, d, 1).Guard = p
	f.Ret(d)
	pb.SetEntry("main")
	wantRule(t, verify.Program("t", pb.MustBuild()), "pred-init")
}

func TestDetectsShapeAndSpeculativeStore(t *testing.T) {
	pb := cleanProgram()
	prog := pb.MustBuild()
	f := prog.Funcs["main"]
	blk := f.Blocks[0]
	// Forge a register above the allocator bound.
	bad := &ir.Op{ID: f.NewOpID(), Opcode: ir.OpMov, Dest: []ir.Reg{f.NumRegs() + 5},
		Imm: 1, HasImm: true}
	blk.Ops = append([]*ir.Op{bad}, blk.Ops...)
	wantRule(t, verify.Program("t", prog), "reg-range")

	pb2 := cleanProgram()
	prog2 := pb2.MustBuild()
	f2 := prog2.Funcs["main"]
	base := f2.Blocks[0].Ops[0].Dest[0]
	st := &ir.Op{ID: f2.NewOpID(), Opcode: ir.OpStW,
		Src: []ir.Reg{base, base}, Speculative: true}
	f2.Blocks[0].Ops = append([]*ir.Op{f2.Blocks[0].Ops[0], st}, f2.Blocks[0].Ops[1:]...)
	wantRule(t, verify.Program("t", prog2), "speculative")
}

// scheduledCode compiles a small fixed program for schedule-mutation
// tests.
func scheduledCode(t *testing.T) *sched.Code {
	t.Helper()
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, 10)
	f.MovI(acc, 0)
	f.Block("loop")
	f.AddI(acc, acc, 3)
	f.MulI(acc, acc, 5)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	code, err := sched.Schedule(pb.MustBuild(), machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := verify.Code("t", code); len(vs) > 0 {
		t.Fatalf("baseline schedule not clean: %v", verify.AsError(vs))
	}
	return code
}

func TestDetectsScheduleMutations(t *testing.T) {
	// Slot out of range / wrong unit class.
	code := scheduledCode(t)
	fc := code.Funcs["main"]
	var mul *sched.SOp
	for _, b := range fc.Bundles {
		for _, so := range b.Ops {
			if so.Op.Opcode == ir.OpMul {
				mul = so
			}
		}
	}
	if mul == nil {
		t.Fatal("no mul scheduled")
	}
	mul.Slot = 0 // slot 0 has no IMul unit on the 8-wide machine
	wantRule(t, verify.Code("t", code), "resource")

	// Broken branch target.
	code = scheduledCode(t)
	fc = code.Funcs["main"]
	for _, b := range fc.Bundles {
		for _, so := range b.Ops {
			if so.Op.IsBranch() {
				so.TargetBundle++
			}
		}
	}
	wantRule(t, verify.Code("t", code), "branch-target")

	// Dependence timing: move the mul into the add's cycle (the add
	// feeds it).
	code = scheduledCode(t)
	fc = code.Funcs["main"]
	var from, to *sched.Bundle
	for _, b := range fc.Bundles {
		for _, so := range b.Ops {
			if so.Op.Opcode == ir.OpMul {
				from = b
			}
			if so.Op.Opcode == ir.OpAdd {
				to = b
			}
		}
	}
	if from == nil || to == nil || from == to {
		t.Fatal("unexpected schedule shape")
	}
	var keep []*sched.SOp
	for _, so := range from.Ops {
		if so.Op.Opcode == ir.OpMul {
			so.Slot = 7 // second IMul-capable slot, away from any occupant
			to.Ops = append(to.Ops, so)
		} else {
			keep = append(keep, so)
		}
	}
	from.Ops = keep
	wantRule(t, verify.Code("t", code), "timing")

	// Duplicated op in a section.
	code = scheduledCode(t)
	fc = code.Funcs["main"]
	for _, b := range fc.Bundles {
		for _, so := range b.Ops {
			if so.Op.Opcode == ir.OpAdd {
				dup := *so
				dup.Slot = 4
				b.Ops = append(b.Ops, &dup)
				wantRule(t, verify.Code("t", code), "op-multiplicity")
				return
			}
		}
	}
	t.Fatal("no add found")
}

func TestDetectsPlanViolations(t *testing.T) {
	code := scheduledCode(t)
	mkPlan := func() *vliw.BufferPlan {
		fc := code.Funcs["main"]
		var sec *sched.BlockCode
		for _, s := range fc.Sections {
			for _, b := range s.Bundles {
				for _, so := range b.Ops {
					if so.Op.LoopBack {
						sec = s
					}
				}
			}
		}
		if sec == nil {
			t.Fatal("no loop section")
		}
		n := 0
		for _, b := range sec.Bundles {
			n += len(b.Ops)
		}
		return &vliw.BufferPlan{Capacity: 64, Loops: []*vliw.PlannedLoop{{
			Func: "main", StartBundle: sec.Start, EndBundle: sec.Start + len(sec.Bundles),
			Ops: n, Counted: sec.Kind == sched.KindKernel || hasCLoop(sec), Label: "main:loop",
		}}}
	}
	if vs := verify.Plan("t", code, mkPlan()); len(vs) > 0 {
		t.Fatalf("baseline plan not clean: %v", verify.AsError(vs))
	}

	p := mkPlan()
	p.Loops[0].Offset = p.Capacity - p.Loops[0].Ops + 1 // spills past capacity
	wantRule(t, verify.Plan("t", code, p), "capacity")

	p = mkPlan()
	p.Loops[0].Ops--
	wantRule(t, verify.Plan("t", code, p), "footprint")

	p = mkPlan()
	p.Loops[0].Counted = !p.Loops[0].Counted
	wantRule(t, verify.Plan("t", code, p), "counted")

	p = mkPlan()
	p.Loops[0].EndBundle++
	wantRule(t, verify.Plan("t", code, p), "plan")
}

func hasCLoop(sec *sched.BlockCode) bool {
	for _, b := range sec.Bundles {
		for _, so := range b.Ops {
			if so.Op.Opcode == ir.OpBrCLoop {
				return true
			}
		}
	}
	return false
}

func TestAsErrorTruncates(t *testing.T) {
	var vs []verify.Violation
	for i := 0; i < 12; i++ {
		vs = append(vs, verify.Violation{Phase: "t", Rule: "r", Msg: "m"})
	}
	err := verify.AsError(vs)
	if err == nil || !strings.Contains(err.Error(), "12 invariant violation(s)") ||
		!strings.Contains(err.Error(), "4 more") {
		t.Fatalf("unexpected error rendering: %v", err)
	}
	if verify.AsError(nil) != nil {
		t.Fatal("AsError(nil) should be nil")
	}
}
