package vliw

import (
	"fmt"
	"sync"

	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/sched"
)

// This file is the batched multi-sim engine. The observation it builds
// on: the simulator's architectural execution — register and memory
// values, control flow, guard outcomes, the one-bundle-per-tick issue
// clock — is completely independent of the loop-buffer plan. A plan
// only changes *accounting*: which fetches issue from the buffer, which
// redirects are predicted away, which per-loop counters advance.
// Redirect penalties never shift writebacks (they accumulate in each
// account's penalty, added to Cycles at the end), so N plans over the
// same code share one architectural execution bit for bit.
//
// RunBatch therefore executes the program once with one account per
// plan: per-bundle fetch bookkeeping, penalties, statistics and events
// fold through every account as each bundle issues. A Figure 7 buffer
// sweep — the same benchmark at 8 buffer sizes — becomes one simulation
// instead of eight.

// BatchOptions configure a batched run.
type BatchOptions struct {
	Options
	// Labels names each plan's run in emitted events (falls back to
	// Options.TraceLabel when shorter than the plan list or empty at an
	// index).
	Labels []string
	// FoldedStatsOnly skips all per-cycle event-ring emission (SimIssue,
	// SimRedirect, SimLoopRecord/Replay/Exit, SimCall/SimRet) while
	// keeping Stats and the post-run registry folding exact. Sweep
	// workloads are throughput-bound and nobody reads their per-cycle
	// rings; skipping emission removes the last per-bundle observability
	// cost from the hot path.
	FoldedStatsOnly bool
}

// RunBatch executes scheduled code once and accounts it under every
// buffer plan, returning one Result per plan (in order). The Results
// share the final memory image and return value — those are
// architectural — while Stats are per-plan.
func RunBatch(code *sched.Code, plans []*BufferPlan, opts BatchOptions) ([]*Result, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("vliw: RunBatch needs at least one buffer plan")
	}
	if w := wheelSize(code.Mach.Latency); w > wheelSlots {
		return nil, fmt.Errorf("vliw: latency table needs a %d-slot writeback wheel (max %d)", w, wheelSlots)
	}
	s := &sim{
		code: code,
		mem:  make([]byte, code.Prog.MemSize),
		opts: opts.Options,
		dbg:  newDebugLog(opts.Options),
		fctx: map[*sched.FuncCode]*funcCtx{},
	}
	s.fastOK = s.dbg == nil && !opts.NoFastPath
	if s.opts.MaxCycles == 0 {
		s.opts.MaxCycles = 4e9
	}
	if s.opts.MaxDepth == 0 {
		s.opts.MaxDepth = 256
	}
	ring := opts.Obs.SimRing()
	if opts.FoldedStatsOnly {
		ring = nil
	}
	if opts.PMU != nil {
		// One clock per batch: samples are plan-independent, so every
		// account profiles the same cycles of the shared execution.
		s.pmu = pmu.NewClock(*opts.PMU)
	}
	s.accts = make([]*account, len(plans))
	for i, plan := range plans {
		label := opts.TraceLabel
		if i < len(opts.Labels) && opts.Labels[i] != "" {
			label = opts.Labels[i]
		}
		a := &account{buf: newBufferState(plan), ring: ring, label: label}
		a.stats.Loops = map[string]*LoopStats{}
		if s.pmu != nil {
			capacity := 0
			if plan != nil {
				capacity = plan.Capacity
			}
			a.prof = pmu.NewProfile(label, capacity)
		}
		s.accts[i] = a
	}
	s.fromBuf = make([]bool, len(plans))
	s.lss = make([]*LoopStats, len(plans))
	var ar *arena
	if opts.Engine != nil {
		ar = opts.Engine.checkout()
		s.framePool = ar.framePool
		s.evScratch = ar.evScratch
	} else {
		s.framePool = map[*sched.FuncCode][]*frame{}
	}
	for _, g := range code.Prog.Globals {
		copy(s.mem[g.Offset:g.Offset+g.Size], g.Init)
	}
	entry := code.Funcs[code.Prog.Entry]
	if entry == nil {
		return nil, fmt.Errorf("vliw: no entry function %q", code.Prog.Entry)
	}
	ret, err := s.run(entry)
	if ar != nil {
		// Hand the (possibly grown) scratch back even on error; the
		// memory image is NOT pooled — Result.Mem escapes to callers.
		ar.evScratch = s.evScratch
		opts.Engine.checkin(ar)
	}
	if err != nil {
		return nil, err
	}
	reg := opts.Obs.Registry()
	results := make([]*Result, len(s.accts))
	for i, a := range s.accts {
		a.buf.flushResidency(s, a)
		a.stats.Cycles = s.now + a.penalty
		if reg != nil {
			foldStats(reg, &a.stats)
		}
		if a.prof != nil {
			a.prof.Cycles = a.stats.Cycles
			if reg != nil {
				reg.Counter("sim.pmu.samples").Add(a.prof.Total())
				reg.Histogram("sim.pmu.samples_per_run").Observe(a.prof.Total())
			}
		}
		results[i] = &Result{Mem: s.mem, Ret: ret, Stats: a.stats, Profile: a.prof}
	}
	return results, nil
}

// Engine pools per-sim scratch across runs: activation frames (keyed
// by callee) and the event-batch buffer. One Engine can back any
// number of concurrent RunBatch calls — each checks an arena out for
// the duration of its run — so a resident service shares warmed-up
// scratch across jobs process-wide. The memory image is deliberately
// not pooled: Result.Mem escapes to callers after the arena is checked
// back in.
type Engine struct {
	mu     sync.Mutex
	arenas []*arena
}

// NewEngine returns an empty engine; arenas materialize on demand.
func NewEngine() *Engine { return &Engine{} }

// arena is one simulation's reusable scratch.
type arena struct {
	framePool map[*sched.FuncCode][]*frame
	evScratch []obs.SimEvent
}

const (
	// maxArenas bounds how many idle arenas an engine retains (the
	// steady-state need is the peak number of concurrent sims).
	maxArenas = 16
	// maxArenaFuncs bounds one arena's frame pool across codes; past it
	// the pool is dropped wholesale rather than curated (frames are
	// cheap to rebuild, stale *FuncCode keys would pin dead schedules).
	maxArenaFuncs = 128
)

func (e *Engine) checkout() *arena {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.arenas); n > 0 {
		a := e.arenas[n-1]
		e.arenas = e.arenas[:n-1]
		return a
	}
	return &arena{framePool: map[*sched.FuncCode][]*frame{}}
}

func (e *Engine) checkin(a *arena) {
	if len(a.framePool) > maxArenaFuncs {
		a.framePool = map[*sched.FuncCode][]*frame{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.arenas) < maxArenas {
		e.arenas = append(e.arenas, a)
	}
}
