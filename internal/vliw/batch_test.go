package vliw

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// batchRing is large enough that no test program's event stream wraps,
// so retained events are the complete stream and can be compared
// exactly.
const batchRing = 1 << 20

func eventsFor(o *obs.Obs, label string) []obs.SimEvent {
	var out []obs.SimEvent
	for _, ev := range o.Sim.Events() {
		if ev.Run == label {
			out = append(out, ev)
		}
	}
	return out
}

// TestRunBatchMatchesSolo is the batch engine's bit-exactness contract:
// running N plans as one batch must reproduce each plan's solo run
// exactly — return value, final memory, Stats (including per-loop
// splits), and the per-run cycle-level event stream, event for event.
// Covers both a plain self-loop schedule and a modulo-scheduled nest,
// with a full plan, an empty plan, and a nil plan side by side (so
// planned and unplanned accounts share one architectural execution),
// plus a call-heavy program.
func TestRunBatchMatchesSolo(t *testing.T) {
	progs := map[string]func() (*sched.Code, error){
		"loop": func() (*sched.Code, error) {
			return sched.Schedule(kernelLoopProgram(200), machine.Default(), sched.Options{})
		},
		"modulo": func() (*sched.Code, error) {
			return sched.Schedule(kernelLoopProgram(200), machine.Default(), sched.Options{EnableModulo: true})
		},
		"calls": func() (*sched.Code, error) {
			return sched.Schedule(callProgram(), machine.Default(), sched.Options{})
		},
	}
	for name, mk := range progs {
		t.Run(name, func(t *testing.T) {
			code, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			plans := []*BufferPlan{
				planSections(code, 256),
				{Capacity: 0},
				nil,
			}
			labels := []string{"run-full", "run-empty", "run-nil"}

			solos := make([]*Result, len(plans))
			soloEvents := make([][]obs.SimEvent, len(plans))
			for i, plan := range plans {
				o := obs.New(obs.Config{SimEvents: true, SimRingSize: batchRing})
				res, err := Run(code, plan, Options{Obs: o, TraceLabel: labels[i]})
				if err != nil {
					t.Fatalf("solo %s: %v", labels[i], err)
				}
				solos[i] = res
				soloEvents[i] = eventsFor(o, labels[i])
			}

			o := obs.New(obs.Config{SimEvents: true, SimRingSize: batchRing})
			batch, err := RunBatch(code, plans, BatchOptions{
				Options: Options{Obs: o},
				Labels:  labels,
			})
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			for i := range plans {
				if batch[i].Ret != solos[i].Ret {
					t.Errorf("%s: ret %d (batch) != %d (solo)", labels[i], batch[i].Ret, solos[i].Ret)
				}
				if !bytes.Equal(batch[i].Mem, solos[i].Mem) {
					t.Errorf("%s: final memory differs", labels[i])
				}
				if !reflect.DeepEqual(batch[i].Stats, solos[i].Stats) {
					t.Errorf("%s: stats differ:\nbatch: %+v\nsolo:  %+v",
						labels[i], batch[i].Stats, solos[i].Stats)
				}
				be := eventsFor(o, labels[i])
				if len(be) != len(soloEvents[i]) {
					t.Fatalf("%s: %d events (batch) != %d (solo)", labels[i], len(be), len(soloEvents[i]))
				}
				for j := range be {
					if be[j] != soloEvents[i][j] {
						t.Fatalf("%s: event %d differs:\nbatch: %+v\nsolo:  %+v",
							labels[i], j, be[j], soloEvents[i][j])
					}
				}
			}
			// Batched accounts share the architectural result.
			if !bytes.Equal(solos[0].Mem, solos[2].Mem) || solos[0].Ret != solos[2].Ret {
				t.Error("solo runs under different plans diverged architecturally")
			}
		})
	}
}

// TestBatchFoldedStatsOnly pins the folded mode: Stats and registry
// folding identical to full-event mode, zero events emitted.
func TestBatchFoldedStatsOnly(t *testing.T) {
	code, err := sched.Schedule(kernelLoopProgram(150), machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plans := []*BufferPlan{planSections(code, 256), nil}

	full := obs.New(obs.Config{Metrics: true, SimEvents: true, SimRingSize: batchRing})
	want, err := RunBatch(code, plans, BatchOptions{Options: Options{Obs: full}})
	if err != nil {
		t.Fatal(err)
	}
	folded := obs.New(obs.Config{Metrics: true, SimEvents: true, SimRingSize: batchRing})
	got, err := RunBatch(code, plans, BatchOptions{
		Options:         Options{Obs: folded},
		FoldedStatsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Errorf("plan %d: folded stats differ:\nfolded: %+v\nfull:   %+v",
				i, got[i].Stats, want[i].Stats)
		}
	}
	if n := folded.Sim.Total(); n != 0 {
		t.Errorf("folded run emitted %d events, want 0", n)
	}
	if full.Sim.Total() == 0 {
		t.Error("full-event run emitted no events (test would be vacuous)")
	}
	// Registry folding still happens in folded mode.
	if runs := folded.Reg.Counter("sim.runs").Value(); runs != int64(len(plans)) {
		t.Errorf("folded sim.runs = %d, want %d", runs, len(plans))
	}
}

// TestBatchSharedDecode pins the content-hash decode cache: two
// schedules built from identical programs are distinct allocations but
// hash equal, so they share one decoded image per function.
func TestBatchSharedDecode(t *testing.T) {
	mk := func() *sched.Code {
		code, err := sched.Schedule(kernelLoopProgram(50), machine.Default(), sched.Options{EnableModulo: true})
		if err != nil {
			t.Fatal(err)
		}
		return code
	}
	a, b := mk(), mk()
	if a == b || a.Funcs["main"] == b.Funcs["main"] {
		t.Fatal("expected distinct allocations")
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("identical schedules hash differently")
	}
	dfa := decodedOf(a, a.Funcs["main"])
	dfb := decodedOf(b, b.Funcs["main"])
	if dfa != dfb {
		t.Fatal("identical schedules did not share a decoded image")
	}
}

// TestBatchStressShared is the -race stress test: N concurrent batched
// sims over two content-identical codes sharing one Engine (arena
// pool) and, through the hash cache, one decoded image. Every run must
// produce the same answer.
func TestBatchStressShared(t *testing.T) {
	codes := make([]*sched.Code, 2)
	for i := range codes {
		code, err := sched.Schedule(kernelLoopProgram(120), machine.Default(), sched.Options{EnableModulo: i == 1})
		if err != nil {
			t.Fatal(err)
		}
		codes[i] = code
	}
	// A second allocation of the same schedule exercises concurrent
	// hash-cache sharing.
	dup, err := sched.Schedule(kernelLoopProgram(120), machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codes = append(codes, dup)

	engine := NewEngine()
	var want int64
	for i := 0; i < 120; i++ {
		want += int64(3*i-11) * 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				code := codes[(g+it)%len(codes)]
				plans := []*BufferPlan{planSections(code, 256), planSections(code, 64), nil}
				res, err := RunBatch(code, plans, BatchOptions{
					Options:         Options{Engine: engine},
					FoldedStatsOnly: true,
				})
				if err != nil {
					errs <- err
					return
				}
				for i, r := range res {
					if r.Ret != want {
						errs <- fmt.Errorf("goroutine %d plan %d: ret %d, want %d", g, i, r.Ret, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
