package vliw

import (
	"fmt"

	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// PlannedLoop is one loop the compiler scheduled into the loop buffer.
type PlannedLoop struct {
	Func string
	// StartBundle / EndBundle delimit the loop's bundles (the kernel
	// section for pipelined loops). Entry is at StartBundle.
	StartBundle, EndBundle int
	// Offset is the compiler-chosen buffer offset (in operations).
	Offset int
	// Ops is the loop's buffer footprint in operations.
	Ops int
	// Counted marks br.cloop loops (exit predicted); wloops pay a
	// misprediction penalty on exit.
	Counted bool
	// Label names the loop for reports (e.g. "PostFilter:B7").
	Label string
}

// Key identifies the loop in statistics maps.
func (pl *PlannedLoop) Key() string {
	return fmt.Sprintf("%s@%d", pl.Func, pl.StartBundle)
}

// BufferPlan is the compile-time assignment of loops to buffer space.
type BufferPlan struct {
	// Capacity is the buffer size in operations.
	Capacity int
	// Loops lists planned loops.
	Loops []*PlannedLoop
}

// bufferState is the runtime state of one account's loop buffer. Each
// batched account carries its own: buffer contents and residency are
// plan-dependent even though the architectural execution is shared.
type bufferState struct {
	plan *BufferPlan
	// byFunc[func][bundle] = planned loop covering that bundle. The
	// string-keyed lookup is hoisted to once per function activation
	// (loopsFor); the per-fetch path only indexes the slice.
	byFunc map[string][]*PlannedLoop
	// index and stats cache per-loop lookups so the per-fetch hot path
	// never re-derives the loop's string key (Key() formats).
	index map[*PlannedLoop]int
	stats map[*PlannedLoop]*LoopStats
	// intact[i] reports whether plan.Loops[i]'s image is valid.
	intact []bool
	// cur is the loop currently streaming (recording or replaying).
	cur *PlannedLoop
	// curLS is cur's stats record, cached so the steady-state fetch
	// path never touches the stats map.
	curLS *LoopStats
	// replaying is true when cur issues from the buffer.
	replaying bool
	// enteredAt is the cycle cur was entered (for residency events).
	enteredAt int64
}

func newBufferState(plan *BufferPlan) *bufferState {
	bs := &bufferState{plan: plan, byFunc: map[string][]*PlannedLoop{},
		index: map[*PlannedLoop]int{}, stats: map[*PlannedLoop]*LoopStats{}}
	if plan == nil {
		return bs
	}
	bs.intact = make([]bool, len(plan.Loops))
	for i, pl := range plan.Loops {
		bs.index[pl] = i
		m := bs.byFunc[pl.Func]
		for len(m) < pl.EndBundle {
			m = append(m, nil)
		}
		for i := pl.StartBundle; i < pl.EndBundle; i++ {
			m[i] = pl
		}
		bs.byFunc[pl.Func] = m
	}
	return bs
}

// loopsFor returns the per-bundle planned-loop table of one function.
// Called once per function activation; nil when the function has no
// planned loops.
func (bs *bufferState) loopsFor(fn string) []*PlannedLoop {
	return bs.byFunc[fn]
}

func (bs *bufferState) indexOf(pl *PlannedLoop) int {
	return bs.index[pl]
}

// lsOf returns (creating on first use) the loop's stats record.
func (bs *bufferState) lsOf(pl *PlannedLoop, a *account) *LoopStats {
	ls := bs.stats[pl]
	if ls == nil {
		ls = &LoopStats{}
		bs.stats[pl] = ls
		a.stats.Loops[pl.Key()] = ls
	}
	return ls
}

// fetch is called once per bundle fetch with the bundle's planned loop
// (already resolved by the caller from the loopsFor table). It updates
// the account's buffer state machine and reports whether this bundle
// issues from the buffer, plus the loop's stats record.
func (bs *bufferState) fetch(pl *PlannedLoop, fc *sched.FuncCode, pc int, s *sim, a *account) (bool, *LoopStats) {
	if pl == nil {
		if bs.cur != nil {
			bs.leave(s, a, fc.F.Name, pc)
		}
		return false, nil
	}
	var ls *LoopStats
	if pl == bs.cur {
		ls = bs.curLS
	} else {
		ls = bs.lsOf(pl, a)
	}
	if pc == pl.StartBundle {
		if bs.cur != pl {
			if bs.cur != nil {
				// Falling directly from one buffered loop into another.
				bs.leave(s, a, fc.F.Name, pc)
			}
			// Entering the loop: the rec_[cw]loop op is fetched from
			// global memory. It issues in the branch slot alongside the
			// preceding bundle, so it costs a fetch but no extra cycle
			// (which would shift the software-pipelined timing).
			ls.Entries++
			a.stats.RecFetches++
			a.stats.OpsIssued++
			bs.cur = pl
			bs.curLS = ls
			bs.enteredAt = s.now
			i := bs.indexOf(pl)
			if bs.intact[i] {
				// Hardware table: image already resident; replay at
				// once, no re-recording.
				bs.replaying = true
				if a.ring != nil {
					a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimLoopReplay,
						Run: a.label, Func: fc.F.Name, PC: int32(pc), Loop: pl.Key()})
				}
			} else {
				bs.replaying = false
				ls.Recordings++
				if a.ring != nil {
					a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimLoopRecord,
						Run: a.label, Func: fc.F.Name, PC: int32(pc), Loop: pl.Key()})
				}
				// Recording overwrites overlapping images.
				for j, other := range bs.plan.Loops {
					if j == i {
						continue
					}
					if overlap(pl, other) {
						bs.intact[j] = false
					}
				}
				bs.intact[i] = true // image valid once this pass completes
			}
		} else {
			// Loop-back to the top: after the recording pass the image
			// is in the buffer; replay from now on.
			if !bs.replaying && a.ring != nil {
				a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimLoopReplay,
					Run: a.label, Func: fc.F.Name, PC: int32(pc), Loop: pl.Key()})
			}
			bs.replaying = true
		}
		ls.Iterations++
		if bs.replaying {
			ls.BufferedIterations++
		}
	}
	return bs.replaying, ls
}

// takenPenalty returns the redirect penalty for a taken branch with
// the given loop-back flag and resolved target bundle.
func (bs *bufferState) takenPenalty(fc *sched.FuncCode, pc int, loopBack bool, target int, s *sim, a *account) int64 {
	if bs.cur != nil && loopBack && target == bs.cur.StartBundle {
		// Buffered loop-back: perfectly predicted.
		return 0
	}
	if bs.cur != nil {
		// Any other taken branch leaves the buffer.
		bs.leave(s, a, fc.F.Name, pc)
	}
	return int64(s.code.Mach.BranchPenalty)
}

// exitPenalty is charged when a loop-back branch falls through (loop
// exit): counted loops predict the exit; wloops mispredict once.
func (bs *bufferState) exitPenalty(fc *sched.FuncCode, pc int, loopBack bool, s *sim, a *account) int64 {
	if bs.cur == nil || !loopBack {
		return 0
	}
	wasReplaying := bs.replaying
	counted := bs.cur.Counted
	bs.leave(s, a, fc.F.Name, pc)
	if counted {
		return 0
	}
	if wasReplaying {
		return int64(s.code.Mach.BranchPenalty)
	}
	return 0
}

// leave closes the current loop residency: emits the SimLoopExit
// event (whose Arg carries the entry cycle, so exporters can render
// residency as a time range) and clears the streaming state.
func (bs *bufferState) leave(s *sim, a *account, fn string, pc int) {
	if bs.cur != nil && a.ring != nil {
		aux := int64(0)
		if bs.replaying {
			aux = 1
		}
		a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimLoopExit,
			Run: a.label, Func: fn, PC: int32(pc), Loop: bs.cur.Key(),
			Arg: bs.enteredAt, Aux: aux})
	}
	bs.cur = nil
	bs.curLS = nil
	bs.replaying = false
}

// flushResidency closes a loop residency left open at end of run.
func (bs *bufferState) flushResidency(s *sim, a *account) {
	if bs.cur != nil {
		bs.leave(s, a, bs.cur.Func, bs.cur.EndBundle)
	}
}

func overlap(a, b *PlannedLoop) bool {
	return a.Offset < b.Offset+b.Ops && b.Offset < a.Offset+a.Ops
}
