package vliw

import (
	"fmt"

	"lpbuf/internal/sched"
)

// PlannedLoop is one loop the compiler scheduled into the loop buffer.
type PlannedLoop struct {
	Func string
	// StartBundle / EndBundle delimit the loop's bundles (the kernel
	// section for pipelined loops). Entry is at StartBundle.
	StartBundle, EndBundle int
	// Offset is the compiler-chosen buffer offset (in operations).
	Offset int
	// Ops is the loop's buffer footprint in operations.
	Ops int
	// Counted marks br.cloop loops (exit predicted); wloops pay a
	// misprediction penalty on exit.
	Counted bool
	// Label names the loop for reports (e.g. "PostFilter:B7").
	Label string
}

// Key identifies the loop in statistics maps.
func (pl *PlannedLoop) Key() string {
	return fmt.Sprintf("%s@%d", pl.Func, pl.StartBundle)
}

// BufferPlan is the compile-time assignment of loops to buffer space.
type BufferPlan struct {
	// Capacity is the buffer size in operations.
	Capacity int
	// Loops lists planned loops.
	Loops []*PlannedLoop
}

// bufferState is the runtime state of the loop buffer.
type bufferState struct {
	plan *BufferPlan
	// byFunc[func][bundle] = planned loop covering that bundle.
	byFunc map[string][]*PlannedLoop
	maxPC  map[string]int
	// intact[i] reports whether plan.Loops[i]'s image is valid.
	intact []bool
	// cur is the loop currently streaming (recording or replaying).
	cur *PlannedLoop
	// replaying is true when cur issues from the buffer.
	replaying bool
}

func newBufferState(plan *BufferPlan) *bufferState {
	bs := &bufferState{plan: plan, byFunc: map[string][]*PlannedLoop{},
		maxPC: map[string]int{}}
	if plan == nil {
		return bs
	}
	bs.intact = make([]bool, len(plan.Loops))
	for _, pl := range plan.Loops {
		m := bs.byFunc[pl.Func]
		for len(m) < pl.EndBundle {
			m = append(m, nil)
		}
		for i := pl.StartBundle; i < pl.EndBundle; i++ {
			m[i] = pl
		}
		bs.byFunc[pl.Func] = m
	}
	return bs
}

func (bs *bufferState) loopAt(fn string, pc int) *PlannedLoop {
	m := bs.byFunc[fn]
	if pc < len(m) {
		return m[pc]
	}
	return nil
}

func (bs *bufferState) indexOf(pl *PlannedLoop) int {
	for i, p := range bs.plan.Loops {
		if p == pl {
			return i
		}
	}
	return -1
}

// fetch is called once per bundle fetch. It updates the buffer state
// machine and reports whether this bundle issues from the buffer, plus
// the loop's stats record.
func (bs *bufferState) fetch(fc *sched.FuncCode, pc int, s *sim) (bool, *LoopStats) {
	pl := bs.loopAt(fc.F.Name, pc)
	if pl == nil {
		bs.cur = nil
		return false, nil
	}
	ls := s.stats.Loops[pl.Key()]
	if ls == nil {
		ls = &LoopStats{}
		s.stats.Loops[pl.Key()] = ls
	}
	if pc == pl.StartBundle {
		if bs.cur != pl {
			// Entering the loop: the rec_[cw]loop op is fetched from
			// global memory. It issues in the branch slot alongside the
			// preceding bundle, so it costs a fetch but no extra cycle
			// (which would shift the software-pipelined timing).
			ls.Entries++
			s.stats.RecFetches++
			s.stats.OpsIssued++
			bs.cur = pl
			i := bs.indexOf(pl)
			if bs.intact[i] {
				// Hardware table: image already resident; replay at
				// once, no re-recording.
				bs.replaying = true
			} else {
				bs.replaying = false
				ls.Recordings++
				// Recording overwrites overlapping images.
				for j, other := range bs.plan.Loops {
					if j == i {
						continue
					}
					if overlap(pl, other) {
						bs.intact[j] = false
					}
				}
				bs.intact[i] = true // image valid once this pass completes
			}
		} else {
			// Loop-back to the top: after the recording pass the image
			// is in the buffer; replay from now on.
			bs.replaying = true
		}
		ls.Iterations++
		if bs.replaying {
			ls.BufferedIterations++
		}
	}
	return bs.replaying, ls
}

// takenPenalty returns the redirect penalty for a taken branch.
func (bs *bufferState) takenPenalty(fc *sched.FuncCode, pc int, so *sched.SOp, s *sim) int64 {
	if bs.cur != nil && so.Op.LoopBack && so.TargetBundle == bs.cur.StartBundle {
		// Buffered loop-back: perfectly predicted.
		return 0
	}
	if bs.cur != nil {
		// Any other taken branch leaves the buffer.
		bs.cur = nil
	}
	return int64(s.code.Mach.BranchPenalty)
}

// exitPenalty is charged when a loop-back branch falls through (loop
// exit): counted loops predict the exit; wloops mispredict once.
func (bs *bufferState) exitPenalty(fc *sched.FuncCode, pc int, so *sched.SOp, s *sim) int64 {
	if bs.cur == nil || !so.Op.LoopBack {
		return 0
	}
	wasReplaying := bs.replaying
	counted := bs.cur.Counted
	bs.cur = nil
	bs.replaying = false
	if counted {
		return 0
	}
	if wasReplaying {
		return int64(s.code.Mach.BranchPenalty)
	}
	return 0
}

func overlap(a, b *PlannedLoop) bool {
	return a.Offset < b.Offset+b.Ops && b.Offset < a.Offset+a.Ops
}
