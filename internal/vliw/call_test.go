package vliw

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

// callProgram: callee writes to a global and returns a value; main
// loops calling it.
func callProgram() *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	gOff := pb.Global("g", 64, nil)
	cal := pb.Func("callee", 2, true)
	cal.Block("e")
	s := cal.Reg()
	cal.Add(s, cal.Param(0), cal.Param(1))
	gB := cal.Const(gOff)
	cal.StW(gB, 0, s)
	d := cal.Reg()
	cal.MulI(d, s, 3)
	cal.Ret(d)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	acc := f.Reg()
	f.MovI(i, 0)
	f.MovI(acc, 0)
	f.Block("loop")
	r := f.Reg()
	f.Call(r, "callee", acc, i)
	f.Add(acc, acc, r)
	f.AddI(i, i, 1)
	f.BrI(ir.CmpLT, i, 5, "loop")
	f.Block("done")
	gB2 := f.Const(gOff)
	last := f.Reg()
	f.LdW(last, gB2, 0)
	f.Add(acc, acc, last)
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestSimCallPath(t *testing.T) {
	prog := callProgram()
	code, err := sched.Schedule(prog.Clone(), machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(code, &BufferPlan{Capacity: 256}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: interpretively computed value.
	// acc sequence: call(acc,i) returns (acc+i)*3
	acc := int64(0)
	var g int64
	for i := int64(0); i < 5; i++ {
		s := acc + i
		g = s
		acc += s * 3
	}
	want := acc + g
	if res.Ret != want {
		t.Fatalf("ret = %d, want %d", res.Ret, want)
	}
}
