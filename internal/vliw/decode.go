package vliw

import (
	"lpbuf/internal/ir"
	"lpbuf/internal/sched"
)

// This file is the simulator's pre-decode layer. The interpretive loop
// used to re-walk sched.Bundle/ir.Op structures on every fetch:
// re-deriving operand sources (register vs immediate), latencies,
// predicate-define destinations and branch metadata per issue, with
// pointer chases across heap-scattered *ir.Op values. decodeFunc
// flattens a scheduled function once into dense, enum-tagged micro-ops
// (dops) laid out contiguously per function, and the image is cached
// on the FuncCode itself, so every simulation of the same schedule —
// across buffer sweeps, differential runs and concurrent experiment
// jobs — shares one decode. The image is immutable after construction;
// racing decoders build identical images and either store wins.

// dkind is the decoded dispatch class of a micro-op. The execution
// switch in exec.go/kernel.go branches on this enum instead of the
// full opcode space.
type dkind uint8

const (
	// dInvalid marks an op the simulator cannot execute; issuing it
	// reproduces the interpretive path's "unhandled op" error.
	dInvalid dkind = iota
	dNop
	dALU // every ir.IsALUEvaluable opcode, including cmpw
	dSel
	dCmpP
	dLoad
	dStore
	dBr
	dJump
	dBrCLoop
	dCall
	dRet
)

// aluKind is the pre-resolved evaluator for a dALU op. The handful of
// opcodes that dominate media kernels get their one-line semantics
// inlined into the execution switch; everything else (saturating ops,
// div/rem, cmpw, min/max, shifts right) falls back to ir.EvalALU. The
// fast cases must mirror ir.EvalALU bit for bit — the randomized
// differential oracle pins that.
type aluKind uint8

const (
	aGeneric aluKind = iota
	aMov
	aAdd
	aSub
	aMul
	aAnd
	aOr
	aXor
	aShl
	aAbs
)

func aluKindOf(opc ir.Opcode) aluKind {
	switch opc {
	case ir.OpMov:
		return aMov
	case ir.OpAdd:
		return aAdd
	case ir.OpSub:
		return aSub
	case ir.OpMul:
		return aMul
	case ir.OpAnd:
		return aAnd
	case ir.OpOr:
		return aOr
	case ir.OpXor:
		return aXor
	case ir.OpShl:
		return aShl
	case ir.OpAbs:
		return aAbs
	}
	return aGeneric
}

// dop is one pre-decoded operation. All dispatch-relevant state is
// resolved at decode time: operand routing (register vs immediate),
// result latency, predicate destinations, branch target bundle and
// loop-back flag, and the callee's scheduled code for calls. The
// original *ir.Op is retained only for error messages and the debug
// trace.
type dop struct {
	kind dkind
	opc  ir.Opcode
	cmp  ir.CmpKind

	// aImm/bImm route the first/second evaluated operand to imm
	// instead of a register (HasImm puts the immediate in the last
	// source slot, so at most one is set).
	aImm, bImm bool
	// unary marks single-operand ALU ops (mov, abs).
	unary bool
	spec  bool
	// loopBack mirrors ir.Op.LoopBack for branch kinds.
	loopBack bool
	// direct marks a latency-1 register result that no later op in the
	// bundle sources and no other op in the bundle writes: EQ-model
	// visibility (next cycle) is then indistinguishable from storing
	// straight into the register file at issue, so the writeback
	// machinery is skipped entirely (see markDirect).
	direct bool
	// alu selects the inlined evaluator for dALU ops.
	alu aluKind

	guard ir.PredReg
	// a, b, c are the decoded source registers (c only for sel; b is
	// the stored value for stores).
	a, b, c ir.Reg
	dest    ir.Reg
	imm     int64
	lat     int64

	// target is the resolved branch target bundle.
	target int32

	// pd holds the active predicate destinations (pre-filtered, so
	// the hot path never re-derives them per issue).
	pd  [2]ir.PredDest
	nPD uint8

	// callee is the resolved scheduled callee (nil reproduces the
	// unknown-callee error at issue time).
	callee *sched.FuncCode

	// op backs error messages and the VLIW_TRACE debug stream.
	op *ir.Op
}

// dbundle is one decoded issue bundle plus its densified fallthrough
// target, so the fetch path never probes the schedule's map.
type dbundle struct {
	ops  []dop
	fall int32
}

// decodedFunc is the cached pre-decoded image of one FuncCode.
type decodedFunc struct {
	fc      *sched.FuncCode
	bundles []dbundle
	// regions overlays the bundle space with replayable single-entry
	// windows (resident loops and straight-line runs; see region.go).
	// regionHead maps a bundle index to the region starting there (-1
	// for none); nil when the function has no regions.
	regions    []region
	regionHead []int32
}

// decodedOf returns the function's cached decode, building it on first
// use. Safe for concurrent simulations sharing one *sched.Code. A miss
// on the FuncCode's own image falls through to the process-wide
// content-hash cache (decodecache.go), so the same benchmark
// recompiled under a different Suite config — byte-identical schedule,
// distinct allocation — shares one decode instead of rebuilding it.
func decodedOf(code *sched.Code, fc *sched.FuncCode) *decodedFunc {
	if v := fc.DecodedImage(); v != nil {
		if df, ok := v.(*decodedFunc); ok {
			return df
		}
	}
	if df := lookupDecoded(code, fc.F.Name); df != nil {
		fc.SetDecodedImage(df)
		return df
	}
	df := decodeFunc(code, fc)
	fc.SetDecodedImage(df)
	storeDecoded(code, fc.F.Name, df)
	return df
}

// decodeFunc flattens fc into its decoded image. All ops across all
// bundles share one backing array for locality.
func decodeFunc(code *sched.Code, fc *sched.FuncCode) *decodedFunc {
	total := 0
	for _, b := range fc.Bundles {
		total += len(b.Ops)
	}
	flat := make([]dop, total)
	df := &decodedFunc{fc: fc, bundles: make([]dbundle, len(fc.Bundles))}
	n := 0
	for i, b := range fc.Bundles {
		start := n
		for _, so := range b.Ops {
			decodeOp(code, so, &flat[n])
			n++
		}
		markDirect(flat[start:n])
		df.bundles[i] = dbundle{ops: flat[start:n:n], fall: int32(fc.FallTarget(i))}
	}
	buildRegions(df, fc)
	return df
}

// markDirect flags the bundle's direct-writeback results. A latency-1
// write qualifies when no later op in the bundle sources the register
// (reads sample at issue, so only later ops could observe the stale
// value the EQ model mandates) and no other op in the bundle writes it
// (two same-cycle writes routed down different paths could land out of
// issue order). Guards are conservative: a nullified reader at runtime
// still disqualifies at decode time.
func markDirect(ops []dop) {
	for i := range ops {
		d := &ops[i]
		switch d.kind {
		case dALU, dSel, dLoad, dBrCLoop:
		default:
			continue
		}
		if d.lat != 1 || d.dest == 0 {
			continue
		}
		ok := true
		for j := i + 1; j < len(ops); j++ {
			if ops[j].readsReg(d.dest) {
				ok = false
				break
			}
		}
		for j := range ops {
			if !ok {
				break
			}
			if j != i && ops[j].writesReg(d.dest) {
				ok = false
			}
		}
		d.direct = ok
	}
}

// readsReg reports whether the op sources register r at issue time.
// r is never 0 here, and unused operand fields stay 0, so immediate
// slots cannot false-positive.
func (d *dop) readsReg(r ir.Reg) bool {
	switch d.kind {
	case dALU, dCmpP, dBr, dStore:
		return d.a == r || d.b == r
	case dSel:
		return d.a == r || d.b == r || d.c == r
	case dLoad, dBrCLoop, dRet:
		return d.a == r
	case dCall:
		for _, sr := range d.op.Src {
			if sr == r {
				return true
			}
		}
	}
	return false
}

// writesReg reports whether the op defines register r (r is never 0).
func (d *dop) writesReg(r ir.Reg) bool {
	switch d.kind {
	case dALU, dSel, dLoad, dBrCLoop, dCall:
		return d.dest == r
	}
	return false
}

// decodeOp resolves one scheduled op into d, mirroring the operand
// conventions of the interpretive switch exactly (see exec in sim.go):
// the immediate, when present, stands in the last source slot.
func decodeOp(code *sched.Code, so *sched.SOp, d *dop) {
	op := so.Op
	d.opc = op.Opcode
	d.cmp = op.Cmp
	d.guard = op.Guard
	d.imm = op.Imm
	d.spec = op.Speculative
	d.loopBack = op.LoopBack
	d.lat = int64(ir.LatencyOf(op, code.Mach.Latency))
	// EQ-model results land no earlier than the next cycle; clamping
	// here keeps the clamp off the per-write hot path.
	if d.lat < 1 {
		d.lat = 1
	}
	d.target = int32(so.TargetBundle)
	d.op = op
	if len(op.Dest) > 0 {
		d.dest = op.Dest[0]
	}

	// srcAB resolves the two evaluated operands under the HasImm
	// convention used by the interpretive src() helper.
	srcAB := func() {
		if op.HasImm && len(op.Src) == 0 {
			d.aImm = true
		} else if len(op.Src) > 0 {
			d.a = op.Src[0]
		}
		if op.HasImm && len(op.Src) == 1 {
			d.bImm = true
		} else if len(op.Src) > 1 {
			d.b = op.Src[1]
		}
	}

	switch {
	case op.Opcode == ir.OpNop:
		d.kind = dNop

	case op.Opcode == ir.OpCmpP:
		d.kind = dCmpP
		srcAB()
		for _, pd := range op.PredDefines() {
			d.pd[d.nPD] = pd
			d.nPD++
		}

	case op.Opcode == ir.OpSel:
		d.kind = dSel
		d.a, d.b, d.c = op.Src[0], op.Src[1], op.Src[2]

	case ir.IsALUEvaluable(op.Opcode):
		d.kind = dALU
		d.unary = op.Opcode == ir.OpMov || op.Opcode == ir.OpAbs
		d.alu = aluKindOf(op.Opcode)
		srcAB()

	case op.IsLoad():
		d.kind = dLoad
		d.a = op.Src[0]

	case op.IsStore():
		d.kind = dStore
		d.a, d.b = op.Src[0], op.Src[1]

	case op.Opcode == ir.OpBr:
		d.kind = dBr
		srcAB()

	case op.Opcode == ir.OpJump:
		d.kind = dJump

	case op.Opcode == ir.OpBrCLoop:
		d.kind = dBrCLoop
		d.a = op.Src[0]

	case op.Opcode == ir.OpCall:
		d.kind = dCall
		d.callee = code.Funcs[op.Callee]

	case op.Opcode == ir.OpRet:
		d.kind = dRet
		if len(op.Src) > 0 {
			d.a = op.Src[0]
		}

	default:
		d.kind = dInvalid
	}
}
