package vliw

import (
	"sync"

	"lpbuf/internal/sched"
)

// Process-wide decoded-image cache keyed by schedule content hash.
// FuncCode-attached images (decode.go) already share a decode across
// every simulation of one *sched.Code allocation; this layer extends
// the sharing across allocations — the same benchmark recompiled under
// a different Suite config, or by a different lpbufd job, hashes to
// the same schedule and reuses the image instead of re-decoding.
//
// The cache is bounded: distinct schedules are evicted FIFO past
// maxDecodeCacheCodes. Within one hash the per-function map only grows
// to the program's function count.

const maxDecodeCacheCodes = 32

var decodeCache = struct {
	mu     sync.Mutex
	byHash map[string]map[string]*decodedFunc
	order  []string
}{byHash: map[string]map[string]*decodedFunc{}}

func lookupDecoded(code *sched.Code, fn string) *decodedFunc {
	h := code.ContentHash()
	decodeCache.mu.Lock()
	defer decodeCache.mu.Unlock()
	return decodeCache.byHash[h][fn]
}

func storeDecoded(code *sched.Code, fn string, df *decodedFunc) {
	h := code.ContentHash()
	decodeCache.mu.Lock()
	defer decodeCache.mu.Unlock()
	m := decodeCache.byHash[h]
	if m == nil {
		if len(decodeCache.order) >= maxDecodeCacheCodes {
			oldest := decodeCache.order[0]
			decodeCache.order = decodeCache.order[1:]
			delete(decodeCache.byHash, oldest)
		}
		m = map[string]*decodedFunc{}
		decodeCache.byHash[h] = m
		decodeCache.order = append(decodeCache.order, h)
	}
	// Racing decoders build identical images; first store wins so every
	// later lookup converges on one pointer.
	if m[fn] == nil {
		m[fn] = df
	}
}
