package vliw_test

import (
	"fmt"
	"sync"
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// TestDecodeCacheConcurrentDistinctCodes hammers the process-wide
// decoded-image cache from 8 goroutines with more distinct schedules
// than maxDecodeCacheCodes (32), so lookups, stores, and FIFO
// evictions interleave continuously. Every simulation must still
// produce its own program's reference result — a cache bug that served
// a decoded image under the wrong content hash would corrupt Ret or
// the cycle count.
func TestDecodeCacheConcurrentDistinctCodes(t *testing.T) {
	const (
		nCodes     = 40 // > maxDecodeCacheCodes: forces steady eviction
		goroutines = 8
		rounds     = 3
	)
	type testCode struct {
		code   *sched.Code
		plan   *vliw.BufferPlan
		ret    int64
		cycles int64
	}
	codes := make([]testCode, nCodes)
	for i := range codes {
		trips := int64(10 + i)
		prog := loopProgram(trips)
		ref, err := interp.Run(prog.Clone(), interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		code, plan := compile(t, prog, 256, false)
		solo, err := vliw.Run(code, plan, vliw.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if solo.Ret != ref.Ret {
			t.Fatalf("code %d: solo ret %d != interp ret %d", i, solo.Ret, ref.Ret)
		}
		codes[i] = testCode{code: code, plan: plan, ret: ref.Ret, cycles: solo.Stats.Cycles}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := range codes {
					// Stagger start offsets so goroutines touch different
					// hashes at any instant and evictions race lookups.
					c := codes[(i+g*5)%nCodes]
					r, err := vliw.Run(c.code, c.plan, vliw.Options{})
					if err != nil {
						errs <- err
						return
					}
					if r.Ret != c.ret || r.Stats.Cycles != c.cycles {
						errs <- fmt.Errorf("goroutine %d round %d: ret %d cycles %d, want ret %d cycles %d (wrong decoded image?)",
							g, round, r.Ret, r.Stats.Cycles, c.ret, c.cycles)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
