package vliw_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// TestScheduleSimDifferential isolates the scheduler+simulator contract
// from the compiler passes: random unoptimized programs (loops, calls,
// predication, memory traffic) are scheduled directly and must
// reproduce the interpreter bit-exactly on all three machine widths.
func TestScheduleSimDifferential(t *testing.T) {
	machines := []*machine.Desc{machine.Default(), machine.Four(), machine.Two()}
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(77 + trial)))
		prog := randomSchedProgram(rng)
		ref, err := interp.Run(prog.Clone(), interp.Options{})
		if err != nil {
			t.Fatalf("trial %d: interp: %v", trial, err)
		}
		for _, m := range machines {
			for _, modulo := range []bool{false, true} {
				code, err := sched.Schedule(prog.Clone(), m, sched.Options{EnableModulo: modulo})
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, m.Name, err)
				}
				res, err := vliw.Run(code, &vliw.BufferPlan{Capacity: 256}, vliw.Options{})
				if err != nil {
					t.Fatalf("trial %d %s modulo=%v: %v", trial, m.Name, modulo, err)
				}
				if res.Ret != ref.Ret || !bytes.Equal(res.Mem, ref.Mem) {
					t.Fatalf("trial %d %s modulo=%v: output mismatch (ret %d vs %d)",
						trial, m.Name, modulo, res.Ret, ref.Ret)
				}
			}
		}
	}
}

// randomSchedProgram builds a random program with hand-written
// predication, a helper call, and counted loops.
func randomSchedProgram(rng *rand.Rand) *ir.Program {
	pb := irbuild.NewProgram(32 << 10)
	n := 32 + rng.Intn(32)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(1<<12) - 1<<11)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)

	// Helper: clamp(x, lo) with a guarded move.
	h := pb.Func("clamp", 1, true)
	h.Block("e")
	v := h.Reg()
	h.Mov(v, h.Param(0))
	pt := h.F.NewPred()
	h.CmpPI(pt, ir.PTUT, 0, ir.PTNone, ir.CmpGT, v, 1000)
	h.MovI(v, 1000).Guard = pt
	h.Ret(v)

	f := pb.Func("main", 0, true)
	f.Block("pre")
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	acc := f.Reg()
	cnt := f.Reg()
	f.MovI(acc, 0)
	f.MovI(cnt, int64(n))
	f.Block("loop")
	x := f.Reg()
	f.LdW(x, pin, 0)
	// A small random dependent computation.
	regs := []ir.Reg{x, acc}
	for k := 0; k < 2+rng.Intn(6); k++ {
		opc := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpMin,
			ir.OpMax, ir.OpAnd, ir.OpOr}[rng.Intn(8)]
		d := f.Reg()
		f.Bin(opc, d, regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))])
		regs = append(regs, d)
	}
	// Hand predication: acc += d only when d is even.
	d := regs[len(regs)-1]
	even := f.Reg()
	f.AndI(even, d, 1)
	p := f.F.NewPred()
	f.CmpPI(p, ir.PTUT, 0, ir.PTNone, ir.CmpEQ, even, 0)
	f.Add(acc, acc, d).Guard = p
	f.StW(pout, 0, acc)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("post")
	r := f.Reg()
	f.Call(r, "clamp", acc)
	f.Ret(r)
	pb.SetEntry("main")
	return pb.MustBuild()
}

func TestEpiloguePadsDrainWrites(t *testing.T) {
	// A loop whose last op is a long-latency mul feeding a post-loop
	// read: the epilogue must be padded so the write lands.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, 20)
	f.MovI(acc, 1)
	f.Block("loop")
	f.MulI(acc, acc, 3)
	f.AndI(acc, acc, 0xffff)
	f.CLoop(cnt, "loop")
	f.Block("done")
	d := f.Reg()
	f.AddI(d, acc, 1) // reads acc immediately after the loop
	f.Ret(d)
	pb.SetEntry("main")
	p := pb.MustBuild()
	refRes, err := interp.Run(p.Clone(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := sched.Schedule(p.Clone(), machine.Default(), sched.Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliw.Run(code, &vliw.BufferPlan{Capacity: 256}, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != refRes.Ret {
		t.Fatalf("drain violation: sim %d vs interp %d", res.Ret, refRes.Ret)
	}
}

// TestBenchmarksAllMachines runs the entire Table 1 suite through
// schedule+simulate on every machine width, with and without modulo
// scheduling, and checks both the interpreter reference and each
// benchmark's own output validator. -short trims to the 8-wide
// machine.
func TestBenchmarksAllMachines(t *testing.T) {
	machines := []*machine.Desc{machine.Default(), machine.Four(), machine.Two()}
	if testing.Short() {
		machines = machines[:1]
	}
	for _, b := range suite.All() {
		for _, m := range machines {
			for _, modulo := range []bool{false, true} {
				b, m, modulo := b, m, modulo
				name := fmt.Sprintf("%s/%s/modulo=%v", b.Name, m.Name, modulo)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					prog := b.Build()
					ref, err := interp.Run(prog.Clone(), interp.Options{})
					if err != nil {
						t.Fatalf("interp: %v", err)
					}
					code, err := sched.Schedule(prog.Clone(), m, sched.Options{EnableModulo: modulo})
					if err != nil {
						t.Fatalf("schedule: %v", err)
					}
					res, err := vliw.Run(code, &vliw.BufferPlan{Capacity: 256}, vliw.Options{})
					if err != nil {
						t.Fatalf("simulate: %v", err)
					}
					if res.Ret != ref.Ret || !bytes.Equal(res.Mem, ref.Mem) {
						t.Fatalf("output mismatch: sim ret %d vs interp %d", res.Ret, ref.Ret)
					}
					if err := b.Check(res.Mem); err != nil {
						t.Fatalf("benchmark self-check: %v", err)
					}
				})
			}
		}
	}
}
