package vliw_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"lpbuf/internal/bench/suite"
	"lpbuf/internal/core"
	"lpbuf/internal/loopbuffer"
	"lpbuf/internal/obs"
	"lpbuf/internal/vliw"
)

// TestFastPathDifferential pins the loop-replay kernel's bit-exactness
// contract: for every Table 1 benchmark, both paper configurations and
// three buffer capacities, a run with the pre-decoded fast path must
// be indistinguishable from the interpretive path — same return value,
// same final memory, same Stats (including per-loop buffer hit/miss
// splits) and the same cycle-level obs event stream, event for event.
func TestFastPathDifferential(t *testing.T) {
	benches := suite.All()
	capacities := []int{16, 64, 256}
	if testing.Short() {
		benches = benches[:4]
		capacities = []int{64}
	}
	for _, b := range benches {
		for _, mk := range []func(int) core.Config{core.Traditional, core.Aggressive} {
			cfg := mk(256)
			b, cfg := b, cfg
			t.Run(fmt.Sprintf("%s/%s", b.Name, cfg.Name), func(t *testing.T) {
				t.Parallel()
				c, err := core.Compile(b.Build(), cfg)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				for _, capacity := range capacities {
					plan := loopbuffer.Plan(c.Code, c.Prof, capacity)
					run := func(noFast bool) (*vliw.Result, *obs.Obs) {
						o := obs.New(obs.Config{Metrics: true, SimEvents: true})
						res, err := vliw.Run(c.Code, plan, vliw.Options{
							Obs:        o,
							TraceLabel: fmt.Sprintf("%s/%s@%d", b.Name, cfg.Name, capacity),
							NoFastPath: noFast,
						})
						if err != nil {
							t.Fatalf("capacity %d noFast=%v: %v", capacity, noFast, err)
						}
						return res, o
					}
					fast, fastObs := run(false)
					slow, slowObs := run(true)

					if fast.Ret != slow.Ret {
						t.Errorf("capacity %d: ret %d (fast) != %d (interpretive)",
							capacity, fast.Ret, slow.Ret)
					}
					if !bytes.Equal(fast.Mem, slow.Mem) {
						t.Errorf("capacity %d: final memory differs", capacity)
					}
					if !reflect.DeepEqual(fast.Stats, slow.Stats) {
						t.Errorf("capacity %d: stats differ:\nfast: %+v\nslow: %+v",
							capacity, fast.Stats, slow.Stats)
						for k, fl := range fast.Stats.Loops {
							if sl := slow.Stats.Loops[k]; sl == nil || *fl != *sl {
								t.Errorf("capacity %d: loop %s: fast %+v slow %+v",
									capacity, k, fl, sl)
							}
						}
					}
					if ft, st := fastObs.Sim.Total(), slowObs.Sim.Total(); ft != st {
						t.Errorf("capacity %d: event totals differ: %d (fast) != %d (interpretive)",
							capacity, ft, st)
					}
					fe, se := fastObs.Sim.Events(), slowObs.Sim.Events()
					if len(fe) != len(se) {
						t.Fatalf("capacity %d: retained events: %d (fast) != %d (interpretive)",
							capacity, len(fe), len(se))
					}
					for i := range fe {
						if fe[i] != se[i] {
							t.Fatalf("capacity %d: event %d differs:\nfast: %+v\nslow: %+v",
								capacity, i, fe[i], se[i])
						}
					}
				}
			})
		}
	}
}
