package vliw

import (
	"fmt"

	"lpbuf/internal/ir"
	"lpbuf/internal/obs"
)

// This file is the loop-replay fast path. Once a planned loop's image
// is resident and streaming from the buffer, every iteration executes
// the same bundle sequence with the same fetch accounting: only the
// register/predicate/memory values vary. runKernel exploits that by
// executing whole iterations over the pre-decoded bundles with the
// invariant work hoisted out of the per-op path:
//
//   - per-op fetch statistics (OpsIssued / OpsFromBuffer / OpsBuffered)
//     collapse to one pre-summed add per loop trip (opsUpTo prefix
//     sums handle partial iterations on side exits);
//   - per-bundle SimIssue events are pre-built once per kernel and
//     emitted as one batch per trip (obs.SimTrace.EmitBatch), with
//     only the cycle stamped in;
//   - the loop-buffer state machine is not consulted per fetch: inside
//     a replaying iteration it is a no-op by construction.
//
// Anything the fast path cannot reproduce bit-exactly — calls, side
// exits, faults, the cycle limit — transfers back to the interpretive
// loop (or shares its code: resolveControl charges exit penalties and
// emits redirects identically). The differential fast-path test pins
// that Results, Stats, memory and the obs ring match the interpretive
// path exactly.

// testKernelEnter, when non-nil, observes every fast-path entry. Test
// hook only (set by non-parallel tests); the nil check sits on the
// loop-head path, not the per-cycle path.
var testKernelEnter func(*PlannedLoop)

// loopKernel is the compiled replay image of one planned loop.
type loopKernel struct {
	pl *PlannedLoop
	// start/end mirror pl.StartBundle/pl.EndBundle.
	start, end int
	// bundles aliases the decoded image's [start:end) window.
	bundles []dbundle
	// opsUpTo[j] is the op count of bundles[0:j]; opsUpTo[len(bundles)]
	// is the full iteration's op count.
	opsUpTo []int64
	// events pre-builds one SimIssue event per bundle (Cycle stamped at
	// flush time).
	events []obs.SimEvent
	// ok reports the loop qualified for kernel execution. A !ok kernel
	// is cached too, so the interpretive loop pays the qualification
	// check only once per loop per run.
	ok bool
}

// kernelFor returns (building and caching on first use) the loop's
// replay kernel for this run. Cached per bufferState — per run — since
// the event templates carry the run label.
func (bs *bufferState) kernelFor(df *decodedFunc, pl *PlannedLoop, s *sim) *loopKernel {
	if k := bs.kernels[pl]; k != nil {
		return k
	}
	k := buildKernel(df, pl, bs, s)
	bs.kernels[pl] = k
	return k
}

// buildKernel qualifies pl for kernel replay and compiles the image.
// Disqualifiers (k.ok = false): calls or returns in the body (they
// re-enter the Go-recursive interpreter), undecodable ops, more than
// one branch per bundle, non-linear fallthrough inside the body, or
// another planned loop overlapping the range. Side-exit branches are
// fine — they transfer back to the interpretive loop at runtime.
func buildKernel(df *decodedFunc, pl *PlannedLoop, bs *bufferState, s *sim) *loopKernel {
	k := &loopKernel{pl: pl, start: pl.StartBundle, end: pl.EndBundle}
	if k.start < 0 || k.end > len(df.bundles) || k.start >= k.end {
		return k
	}
	loops := bs.loopsFor(pl.Func)
	n := k.end - k.start
	for j := 0; j < n; j++ {
		pc := k.start + j
		if pc >= len(loops) || loops[pc] != pl {
			return k
		}
		db := &df.bundles[pc]
		if j < n-1 && int(db.fall) != pc+1 {
			return k
		}
		branches := 0
		for i := range db.ops {
			switch db.ops[i].kind {
			case dCall, dRet, dInvalid:
				return k
			case dBr, dJump, dBrCLoop:
				branches++
			}
		}
		if branches > 1 {
			return k
		}
	}
	k.bundles = df.bundles[k.start:k.end]
	k.opsUpTo = make([]int64, n+1)
	k.events = make([]obs.SimEvent, n)
	for j := 0; j < n; j++ {
		k.opsUpTo[j+1] = k.opsUpTo[j] + int64(len(k.bundles[j].ops))
		k.events[j] = obs.SimEvent{Kind: obs.SimIssue, Run: s.label,
			Func: df.fc.F.Name, PC: int32(k.start + j),
			Arg: int64(len(k.bundles[j].ops)), Aux: 1}
	}
	k.ok = true
	return k
}

// addKernelStats folds one (possibly partial) iteration's pre-summed
// fetch statistics into the run totals.
func (s *sim) addKernelStats(ls *LoopStats, issued, nullified int64) {
	s.stats.OpsIssued += issued
	s.stats.OpsFromBuffer += issued
	ls.OpsBuffered += issued
	s.stats.OpsNullified += nullified
}

// flushKernelEvents emits the iteration's first count SimIssue events,
// stamped with their actual cycles, as one batch. Must run before any
// exit-path event (redirect, loop exit) so the ring order matches the
// interpretive path exactly.
func (s *sim) flushKernelEvents(k *loopKernel, iterBase int64, count int) {
	if s.ring == nil || count == 0 {
		return
	}
	evs := s.evScratch[:0]
	for i := 0; i < count; i++ {
		ev := k.events[i]
		ev.Cycle = iterBase + int64(i)
		evs = append(evs, ev)
	}
	s.evScratch = evs
	s.ring.EmitBatch(evs)
}

// runKernel executes buffered-replay iterations of k until control
// leaves the loop, returning the bundle to resume the interpretive
// loop at. Entered right after the loop-head fetch of a streaming
// iteration (cur == k.pl, replaying), so that fetch has already done
// this iteration's entry/replay/iteration bookkeeping; the kernel
// takes over the per-iteration accounting from the second trip on.
func (s *sim) runKernel(f *frame, df *decodedFunc, k *loopKernel, sc *scratch) (int, error) {
	fc := df.fc
	ls := s.buf.curLS
	n := len(k.bundles)
	maxC := s.opts.MaxCycles
	first := true
	for {
		// One replay iteration. Entry/recording transitions cannot
		// occur here (the loop is already streaming).
		iterBase := s.now
		if !first {
			ls.Iterations++
			ls.BufferedIterations++
		}
		first = false
		var nullified int64
		for j := 0; j < n; j++ {
			if s.now > maxC {
				s.flushKernelEvents(k, iterBase, j)
				return 0, fmt.Errorf("vliw: cycle limit exceeded in %s (pc %d)", fc.F.Name, k.start+j)
			}
			db := &k.bundles[j]
			sc.branches = sc.branches[:0]
			sc.stores = sc.stores[:0]
			for i := range db.ops {
				d := &db.ops[i]
				guard := true
				if d.guard != 0 {
					guard = s.readPred(f, d.guard)
				}
				if !guard && d.kind != dCmpP {
					nullified++
					continue
				}
				switch d.kind {
				case dNop:

				case dALU:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if !d.unary {
						if d.bImm {
							b = d.imm
						} else {
							b = s.readReg(f, d.b)
						}
					}
					var v int64
					switch d.alu {
					case aAdd:
						v = ir.W32(a + b)
					case aSub:
						v = ir.W32(a - b)
					case aMov:
						v = ir.W32(a)
					case aAbs:
						if a < 0 {
							a = -a
						}
						v = ir.W32(a)
					case aMul:
						v = ir.W32(a * b)
					case aAnd:
						v = ir.W32(a & b)
					case aOr:
						v = ir.W32(a | b)
					case aXor:
						v = ir.W32(a ^ b)
					case aShl:
						v = ir.W32(a << (uint64(b) & 31))
					default:
						v = ir.EvalALU(d.opc, d.cmp, a, b)
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dCmpP:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if d.bImm {
						b = d.imm
					} else {
						b = s.readReg(f, d.b)
					}
					cond := d.cmp.Eval(a, b)
					for pi := uint8(0); pi < d.nPD; pi++ {
						pd := d.pd[pi]
						v, w := pd.Type.Update(guard, cond)
						if w {
							if d.lat == 1 {
								s.writePredFast(f, pd.Pred, v)
							} else {
								s.writePred(f, pd.Pred, v, d.lat)
							}
						}
					}

				case dSel:
					v := s.readReg(f, d.b)
					if s.readReg(f, d.a) == 0 {
						v = s.readReg(f, d.c)
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dLoad:
					addr := s.readReg(f, d.a) + d.imm
					v, err := s.load(d.opc, addr)
					if err != nil {
						if d.spec {
							v = 0
						} else {
							s.flushKernelEvents(k, iterBase, j+1)
							return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, k.start+j, err)
						}
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dStore:
					addr := s.readReg(f, d.a) + d.imm
					val := s.readReg(f, d.b)
					sc.stores = append(sc.stores, storeAction{opc: d.opc, addr: addr, val: val})
					if e := s.checkStore(d.opc, addr); e != nil {
						s.flushKernelEvents(k, iterBase, j+1)
						return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, k.start+j, e)
					}

				case dBr:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if d.bImm {
						b = d.imm
					} else {
						b = s.readReg(f, d.b)
					}
					if d.cmp.Eval(a, b) {
						sc.branches = append(sc.branches, branchAction{d: d, taken: true})
					} else if d.loopBack {
						sc.branches = append(sc.branches, branchAction{d: d, taken: false})
					}

				case dJump:
					sc.branches = append(sc.branches, branchAction{d: d, taken: true})

				case dBrCLoop:
					c := ir.W32(s.readReg(f, d.a) - 1)
					if d.direct {
						f.regs[d.dest] = c
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, c)
					} else {
						s.writeReg(f, d.dest, c, d.lat)
					}
					sc.branches = append(sc.branches, branchAction{d: d, taken: c > 0})
				}
			}

			// Commit stores at end of cycle.
			for _, st := range sc.stores {
				_ = s.store(st.opc, st.addr, st.val)
			}

			if len(sc.branches) == 0 {
				if j < n-1 {
					// Linear fallthrough inside the body (build checked
					// fall == pc+1).
					s.tick(f)
					continue
				}
				// Fell past the loop end with no branch decision: the
				// iteration is complete; resume interpretively at the
				// fall target (the fetch there closes the residency).
				s.addKernelStats(ls, k.opsUpTo[n], nullified)
				s.flushKernelEvents(k, iterBase, n)
				s.tick(f)
				next := int(db.fall)
				if next < 0 {
					return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
				}
				return next, nil
			}

			ba := sc.branches[0]
			if ba.taken && ba.d.loopBack && int(ba.d.target) == k.start {
				// Buffered loop-back: perfectly predicted, no penalty, no
				// redirect. Next iteration.
				s.addKernelStats(ls, k.opsUpTo[j+1], nullified)
				s.flushKernelEvents(k, iterBase, j+1)
				s.tick(f)
				break
			}

			// Loop exit (untaken loop-back) or side exit (any other
			// taken branch): account the partial iteration, then share
			// the interpretive control-resolution code so penalties,
			// redirect events and the buffer-leave transition are
			// bit-identical.
			s.addKernelStats(ls, k.opsUpTo[j+1], nullified)
			s.flushKernelEvents(k, iterBase, j+1)
			next := s.resolveControl(fc, k.start+j, sc)
			s.tick(f)
			if next == -2 {
				next = int(db.fall)
				if next < 0 {
					return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
				}
			}
			return next, nil
		}
	}
}
