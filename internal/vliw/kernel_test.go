package vliw

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

// kernelLoopProgram is a counted loop with memory traffic — the shape
// the replay fast path exists for.
func kernelLoopProgram(trips int64) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	n := int(trips)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(3*i - 11)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, trips)
	f.MovI(acc, 0)
	f.Block("loop")
	v := f.Reg()
	f.LdW(v, pin, 0)
	f.MulI(v, v, 5)
	f.Add(acc, acc, v)
	f.StW(pout, 0, v)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// planSections builds a BufferPlan covering every loop section of the
// schedule (mirrors internal/loopbuffer's recognition, which this
// package cannot import without a cycle).
func planSections(code *sched.Code, capacity int) *BufferPlan {
	plan := &BufferPlan{Capacity: capacity}
	off := 0
	for _, name := range code.Prog.Order {
		fc := code.Funcs[name]
		for _, sec := range fc.Sections {
			isLoop := sec.Kind == sched.KindKernel
			counted := isLoop
			if sec.Kind == sched.KindStraight {
				for _, b := range sec.Bundles {
					for _, so := range b.Ops {
						if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
							isLoop = true
							counted = so.Op.Opcode == ir.OpBrCLoop
						}
					}
				}
			}
			if !isLoop {
				continue
			}
			ops := 0
			for _, b := range sec.Bundles {
				ops += len(b.Ops)
			}
			plan.Loops = append(plan.Loops, &PlannedLoop{
				Func: name, StartBundle: sec.Start,
				EndBundle: sec.Start + len(sec.Bundles),
				Offset:    off, Ops: ops, Counted: counted,
				Label: name,
			})
			off += ops
		}
	}
	return plan
}

// TestKernelQualifies pins that representative planned loops — a plain
// counted self-loop and a modulo-scheduled kernel section — compile
// into an ok replay kernel with consistent prefix sums and event
// templates. If a schedule change ever disqualifies these shapes, the
// simulator silently loses its fast path; this test makes that loud.
func TestKernelQualifies(t *testing.T) {
	for _, modulo := range []bool{false, true} {
		prog := kernelLoopProgram(50)
		code, err := sched.Schedule(prog, machine.Default(), sched.Options{EnableModulo: modulo})
		if err != nil {
			t.Fatal(err)
		}
		plan := planSections(code, 256)
		if len(plan.Loops) == 0 {
			t.Fatalf("modulo=%v: no loop sections recognized", modulo)
		}
		bs := newBufferState(plan)
		s := &sim{code: code, buf: bs}
		for _, pl := range plan.Loops {
			fc := code.Funcs[pl.Func]
			df := decodedOf(code, fc)
			k := bs.kernelFor(df, pl, s)
			if !k.ok {
				t.Fatalf("modulo=%v: loop %s did not qualify for kernel replay", modulo, pl.Key())
			}
			n := pl.EndBundle - pl.StartBundle
			if len(k.bundles) != n || len(k.events) != n || len(k.opsUpTo) != n+1 {
				t.Fatalf("modulo=%v: kernel shape mismatch for %s", modulo, pl.Key())
			}
			var total int64
			for _, db := range k.bundles {
				total += int64(len(db.ops))
			}
			if k.opsUpTo[n] != total {
				t.Fatalf("modulo=%v: opsUpTo[%d] = %d, want %d", modulo, n, k.opsUpTo[n], total)
			}
			if bs.kernelFor(df, pl, s) != k {
				t.Fatalf("modulo=%v: kernel not cached", modulo)
			}
		}
	}
}

// TestKernelRejectsCalls pins the fallback side of the qualification:
// a loop body containing a call must not compile into a kernel (calls
// re-enter the Go-recursive interpreter).
func TestKernelRejectsCalls(t *testing.T) {
	prog := callProgram()
	// Mark the call loop's back edge so it is planned like a wloop.
	for _, b := range prog.Funcs["main"].Blocks {
		if last := b.LastOp(); last != nil && last.IsBranch() && last.Target == b.ID {
			last.LoopBack = true
		}
	}
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSections(code, 256)
	if len(plan.Loops) == 0 {
		t.Fatal("no loop sections recognized")
	}
	bs := newBufferState(plan)
	s := &sim{code: code, buf: bs}
	for _, pl := range plan.Loops {
		df := decodedOf(code, code.Funcs[pl.Func])
		if k := bs.kernelFor(df, pl, s); k.ok {
			t.Fatalf("loop %s with a call qualified for kernel replay", pl.Key())
		}
	}
}

// TestKernelEngages proves the fast path actually runs end-to-end: a
// buffered counted loop must enter the kernel at least once during
// replay, and the run must still produce the right answer.
func TestKernelEngages(t *testing.T) {
	prog := kernelLoopProgram(100)
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSections(code, 256)
	entries := 0
	testKernelEnter = func(*PlannedLoop) { entries++ }
	defer func() { testKernelEnter = nil }()
	res, err := Run(code, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 {
		t.Fatal("kernel fast path never engaged on a buffered counted loop")
	}
	want := int64(0)
	for i := 0; i < 100; i++ {
		want += int64(3*i-11) * 5
	}
	if res.Ret != want {
		t.Fatalf("ret = %d, want %d", res.Ret, want)
	}
	// And NoFastPath must force it off.
	entries = 0
	if _, err := Run(code, plan, Options{NoFastPath: true}); err != nil {
		t.Fatal(err)
	}
	if entries != 0 {
		t.Fatalf("NoFastPath run entered the kernel %d times", entries)
	}
}
