package vliw_test

import (
	"testing"

	"lpbuf/internal/obs"
	"lpbuf/internal/vliw"
)

// TestDisabledObsAllocsDoNotScale pins the acceptance criterion for
// the observability layer: with no Obs configured, the simulator's
// per-run allocations are identical at 100 and 3000 trips (30x the
// cycles). Any per-cycle or per-bundle allocation introduced by an
// instrumentation hook would make the large run allocate more.
func TestDisabledObsAllocsDoNotScale(t *testing.T) {
	run := func(trips int64) float64 {
		prog := loopProgram(trips)
		code, plan := compile(t, prog, 256, false)
		return testing.AllocsPerRun(5, func() {
			if _, err := vliw.Run(code, plan, vliw.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(100), run(3000)
	if large > small {
		t.Fatalf("allocations scale with cycle count: %v at 100 trips, %v at 3000", small, large)
	}
}

// BenchmarkSimDisabledObs measures the simulator hot loop with
// observability off — the configuration every correctness test and
// experiment sweep runs in. The b.ReportAllocs figure divided by
// b.N should stay flat as trips grow (per-run setup only, nothing
// per cycle).
func BenchmarkSimDisabledObs(b *testing.B) {
	prog := loopProgram(1000)
	code, plan := compile(b, prog, 256, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vliw.Run(code, plan, vliw.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEnabledObs is the same workload with metrics, spans and
// the sim event ring all enabled — the upper bound a -trace-out run
// pays.
func BenchmarkSimEnabledObs(b *testing.B) {
	prog := loopProgram(1000)
	code, plan := compile(b, prog, 256, false)
	o := obs.New(obs.Config{Metrics: true, Spans: true, SimEvents: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vliw.Run(code, plan, vliw.Options{Obs: o, TraceLabel: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}
