package vliw_test

import (
	"testing"

	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/vliw"
)

// TestPMUSamplingDeterministic pins the reproducibility guarantee: two
// runs of the same program under the same sampling config take
// identical samples, and a different seed takes different ones.
func TestPMUSamplingDeterministic(t *testing.T) {
	prog := loopProgram(2000)
	code, plan := compile(t, prog, 256, false)
	run := func(seed uint64) *pmu.Profile {
		res, err := vliw.Run(code, plan, vliw.Options{
			PMU: &pmu.Config{Period: 256, Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Profile == nil {
			t.Fatal("PMU enabled but no profile returned")
		}
		return res.Profile
	}
	a, b := run(1), run(1)
	if a.Total() == 0 {
		t.Fatal("no samples taken over 2000 trips at period 256")
	}
	if !a.Equal(b) {
		t.Fatalf("same seed diverged: %d vs %d samples", a.Total(), b.Total())
	}
	if c := run(99); a.Equal(c) && a.Total() == c.Total() {
		// Equal attribution with identical totals under a different
		// jitter stream would mean the seed is ignored.
		t.Fatalf("seeds 1 and 99 produced identical profiles (%d samples)", a.Total())
	}
}

// TestPMUFastPathDifferential pins the tentpole property: the
// region-replay fast path reconstructs exactly the samples the
// interpretive path takes, for every plan in a batch.
func TestPMUFastPathDifferential(t *testing.T) {
	prog := loopProgram(3000)
	code, plan := compile(t, prog, 256, false)
	plans := []*vliw.BufferPlan{plan, nil, {Capacity: 1}}
	run := func(noFast bool) []*vliw.Result {
		results, err := vliw.RunBatch(code, plans, vliw.BatchOptions{
			Options: vliw.Options{
				NoFastPath: noFast,
				PMU:        &pmu.Config{Period: 512, Seed: 3},
			},
			Labels: []string{"p/replay@256", "p/nil@0", "p/tiny@1"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	slow, fast := run(true), run(false)
	for i := range slow {
		sp, fp := slow[i].Profile, fast[i].Profile
		if sp == nil || fp == nil {
			t.Fatalf("plan %d: missing profile (slow %v, fast %v)", i, sp != nil, fp != nil)
		}
		if sp.Total() == 0 {
			t.Fatalf("plan %d: no samples", i)
		}
		if !sp.Equal(fp) {
			t.Fatalf("plan %d: interpretive and fast-path samples differ (%d vs %d)",
				i, sp.Total(), fp.Total())
		}
	}
	// The replay plan must attribute samples to the replay state; the
	// nil plan can only ever see memory.
	var sawReplay bool
	for _, r := range fast[0].Profile.Samples() {
		if r.State == "replay" {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Fatal("buffered plan took no replay-state samples")
	}
	for _, r := range fast[1].Profile.Samples() {
		if r.State != "memory" {
			t.Fatalf("nil-plan sample in state %q", r.State)
		}
	}
}

// TestPMUBatchPerPlanProfiles: one shared execution yields one profile
// per plan, labeled, capacity-stamped, with the final cycle count.
func TestPMUBatchPerPlanProfiles(t *testing.T) {
	prog := loopProgram(1500)
	code, plan := compile(t, prog, 256, false)
	labels := []string{"bench/a@256", "bench/b@0"}
	results, err := vliw.RunBatch(code, []*vliw.BufferPlan{plan, nil}, vliw.BatchOptions{
		Options: vliw.Options{PMU: &pmu.Config{}},
		Labels:  labels,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		p := r.Profile
		if p == nil {
			t.Fatalf("plan %d: no profile", i)
		}
		if p.Label != labels[i] {
			t.Fatalf("plan %d: label %q, want %q", i, p.Label, labels[i])
		}
		if p.Cycles != r.Stats.Cycles {
			t.Fatalf("plan %d: profile cycles %d != stats cycles %d", i, p.Cycles, r.Stats.Cycles)
		}
	}
	if results[0].Profile.Capacity != 256 || results[1].Profile.Capacity != 0 {
		t.Fatalf("capacities %d/%d, want 256/0",
			results[0].Profile.Capacity, results[1].Profile.Capacity)
	}
	// Disabled PMU yields no profiles at all.
	results, err = vliw.RunBatch(code, []*vliw.BufferPlan{plan}, vliw.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Profile != nil {
		t.Fatal("profile present with PMU disabled")
	}
}

// TestPMUFoldsIntoRegistry: an enabled batch run feeds the sample
// counter and per-run histogram of the wired registry.
func TestPMUFoldsIntoRegistry(t *testing.T) {
	prog := loopProgram(2000)
	code, plan := compile(t, prog, 256, false)
	reg := obs.NewRegistry()
	o := &obs.Obs{Reg: reg}
	res, err := vliw.Run(code, plan, vliw.Options{
		Obs: o, TraceLabel: "t", PMU: &pmu.Config{Period: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sim.pmu.samples"]; got != res.Profile.Total() {
		t.Fatalf("sim.pmu.samples = %d, want %d", got, res.Profile.Total())
	}
	h, ok := snap.Histograms["sim.pmu.samples_per_run"]
	if !ok || h.Count != 1 {
		t.Fatalf("sim.pmu.samples_per_run histogram missing or count != 1: %+v", h)
	}
}

// TestDisabledPMUZeroAlloc pins the sampling-off contract the same way
// TestDisabledObsAllocsDoNotScale pins the obs hooks: a nil PMU config
// must not add a single allocation regardless of cycle count.
func TestDisabledPMUZeroAlloc(t *testing.T) {
	run := func(trips int64) float64 {
		prog := loopProgram(trips)
		code, plan := compile(t, prog, 256, false)
		return testing.AllocsPerRun(5, func() {
			if _, err := vliw.Run(code, plan, vliw.Options{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(100), run(3000)
	if large > small {
		t.Fatalf("allocations scale with cycle count: %v at 100 trips, %v at 3000", small, large)
	}
}

// BenchmarkSimEnabledPMU is the vliw-level cost probe of sampling at
// the default period (the cross-backend gate lives in the top-level
// BenchmarkSimsPerSecPMU).
func BenchmarkSimEnabledPMU(b *testing.B) {
	prog := loopProgram(1000)
	code, plan := compile(b, prog, 256, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vliw.Run(code, plan, vliw.Options{PMU: &pmu.Config{}}); err != nil {
			b.Fatal(err)
		}
	}
}
