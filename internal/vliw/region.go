package vliw

import (
	"fmt"

	"lpbuf/internal/ir"
	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// This file is the region replay fast path — the generalization of the
// old innermost-kernel fast path to whole resident-loop nests. The
// decoded image overlays the bundle space with *regions*: resident-loop
// bodies (loop sections as the buffer planner recognizes them —
// software-pipelined kernels and self-loop straight sections) plus
// maximal straight-line runs such as pipelined prologues and epilogues.
// Regions are plan-independent, so one decode serves every buffer plan
// in a batch.
//
// At a region head the simulator executes whole trips over the
// pre-decoded bundles with the invariant work hoisted out of the
// per-op path:
//
//   - per-op fetch statistics (OpsIssued / OpsFromBuffer / OpsBuffered
//     / OpsMemory) collapse to one pre-summed add per account per trip
//     (opsUpTo prefix sums handle partial trips on side exits);
//   - per-bundle SimIssue events are emitted as one batch per account
//     per trip (obs.SimTrace.EmitBatch);
//   - the loop-buffer state machine runs once per trip, at the head
//     fetch, instead of once per bundle: inside a trip it is a no-op by
//     construction (the fetch state can only change at the head).
//
// Anything the fast path cannot reproduce bit-exactly — calls, returns,
// undecodable ops, non-linear fallthrough, plans that straddle region
// boundaries — disqualifies the region (or the account alignment) and
// falls back to the interpretive loop. Side exits, faults and the cycle
// limit share the interpretive code paths (resolveControl, the same
// error construction), so penalties, redirect events and errors are
// bit-identical. The differential fast-path test pins all of this.

// testRegionEnter, when non-nil, observes every loop-region fast-path
// entry with some planned account. Test hook only (set by non-parallel
// tests); the nil check sits on the region-head path, not the per-cycle
// path.
var testRegionEnter func(*PlannedLoop)

// region is one replayable window of a decoded function.
type region struct {
	// start/end delimit the region's bundles.
	start, end int32
	// loop marks a resident-loop region (multi-trip replay; the head
	// fetch runs the buffer state machine every trip). False is a
	// straight-line run executed as a single pass.
	loop bool
	// opsUpTo[j] is the op count of bundles [start, start+j);
	// opsUpTo[end-start] is the full trip's op count.
	opsUpTo []int64
}

// funcCtx is one simulation's per-function execution context: the
// shared decode image plus each account's planned-loop table and the
// per-region alignment verdicts.
type funcCtx struct {
	df *decodedFunc
	// tabs[ai] is account ai's per-bundle planned-loop table for this
	// function (nil when its plan has no loops here).
	tabs [][]*PlannedLoop
	// regionUse[ri] reports whether df.regions[ri] is usable by every
	// account; regionPls[ri][ai] is then account ai's planned loop
	// spanning the region (nil for an unplanned account or a straight
	// region).
	regionUse []bool
	regionPls [][]*PlannedLoop
}

// funcCtxOf returns (building and caching on first use) the function's
// execution context for this simulation.
func (s *sim) funcCtxOf(fc *sched.FuncCode) *funcCtx {
	if fx := s.fctx[fc]; fx != nil {
		return fx
	}
	df := decodedOf(s.code, fc)
	fx := &funcCtx{df: df, tabs: make([][]*PlannedLoop, len(s.accts))}
	for ai, a := range s.accts {
		fx.tabs[ai] = a.buf.loopsFor(fc.F.Name)
	}
	if s.fastOK && len(df.regions) > 0 {
		fx.regionUse = make([]bool, len(df.regions))
		fx.regionPls = make([][]*PlannedLoop, len(df.regions))
		for ri := range df.regions {
			r := &df.regions[ri]
			pls := make([]*PlannedLoop, len(s.accts))
			use := true
			for ai := range s.accts {
				pl, ok := alignedPlan(fx.tabs[ai], r)
				if !ok {
					use = false
					break
				}
				pls[ai] = pl
			}
			fx.regionUse[ri] = use
			if use {
				fx.regionPls[ri] = pls
			}
		}
	}
	s.fctx[fc] = fx
	return fx
}

// alignedPlan checks one account's plan against a region: usable when
// the plan either ignores the region entirely (no planned loop covers
// any of its bundles) or dedicates exactly one planned loop to exactly
// the region's range — the shape internal/loopbuffer emits for loop
// sections. Anything else (hand-built plans straddling region
// boundaries) sends the whole region to the interpretive path.
func alignedPlan(tab []*PlannedLoop, r *region) (*PlannedLoop, bool) {
	var pl0 *PlannedLoop
	if int(r.start) < len(tab) {
		pl0 = tab[r.start]
	}
	for pc := int(r.start); pc < int(r.end); pc++ {
		var pl *PlannedLoop
		if pc < len(tab) {
			pl = tab[pc]
		}
		if pl != pl0 {
			return nil, false
		}
	}
	if pl0 == nil {
		return nil, true
	}
	if !r.loop || pl0.StartBundle != int(r.start) || pl0.EndBundle != int(r.end) {
		return nil, false
	}
	return pl0, true
}

// buildRegions overlays df's bundle space with replayable regions.
// Loop regions come from the schedule's loop sections (exactly the
// sections the buffer planner recognizes, so real plans always align);
// straight regions are the maximal remaining runs of qualifying
// bundles linked by linear fallthrough — pipelined prologues and
// epilogues chief among them, so a whole software-pipelined nest
// (prologue → kernel → epilogue) replays through region trips.
func buildRegions(df *decodedFunc, fc *sched.FuncCode) {
	n := len(df.bundles)
	if n == 0 {
		return
	}
	claimed := make([]bool, n)
	var regions []region
	for _, sec := range fc.Sections {
		if !sectionIsLoop(sec) {
			continue
		}
		start, end := sec.Start, sec.Start+len(sec.Bundles)
		if start < 0 || end > n || start >= end {
			continue
		}
		if !regionQualifies(df, start, end) {
			continue
		}
		regions = append(regions, newRegion(df, start, end, true))
		for pc := start; pc < end; pc++ {
			claimed[pc] = true
		}
	}
	for pc := 0; pc < n; {
		if claimed[pc] || !bundleQualifies(&df.bundles[pc]) {
			pc++
			continue
		}
		start := pc
		pc++
		for pc < n && !claimed[pc] && int(df.bundles[pc-1].fall) == pc &&
			bundleQualifies(&df.bundles[pc]) {
			pc++
		}
		// A single bundle gains nothing from trip batching.
		if pc-start >= 2 {
			regions = append(regions, newRegion(df, start, pc, false))
		}
	}
	if len(regions) == 0 {
		return
	}
	df.regions = regions
	df.regionHead = make([]int32, n)
	for i := range df.regionHead {
		df.regionHead[i] = -1
	}
	for ri := range regions {
		df.regionHead[regions[ri].start] = int32(ri)
	}
}

// sectionIsLoop mirrors the buffer planner's loop recognition
// (loopbuffer.sectionLoop): modulo-scheduled kernels, and straight
// sections whose loop-back branch targets their own start.
func sectionIsLoop(sec *sched.BlockCode) bool {
	switch sec.Kind {
	case sched.KindKernel:
		return true
	case sched.KindStraight:
		for _, b := range sec.Bundles {
			for _, so := range b.Ops {
				if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
					return true
				}
			}
		}
	}
	return false
}

// regionQualifies vets [start, end) for region execution: every bundle
// qualifies and internal fallthrough is linear.
func regionQualifies(df *decodedFunc, start, end int) bool {
	for pc := start; pc < end; pc++ {
		db := &df.bundles[pc]
		if !bundleQualifies(db) {
			return false
		}
		if pc < end-1 && int(db.fall) != pc+1 {
			return false
		}
	}
	return true
}

// bundleQualifies rejects bundles the region runner cannot execute:
// calls and returns (they re-enter the Go-recursive interpreter),
// undecodable ops, and more than one branch per bundle.
func bundleQualifies(db *dbundle) bool {
	branches := 0
	for i := range db.ops {
		switch db.ops[i].kind {
		case dCall, dRet, dInvalid:
			return false
		case dBr, dJump, dBrCLoop:
			branches++
		}
	}
	return branches <= 1
}

func newRegion(df *decodedFunc, start, end int, loop bool) region {
	r := region{start: int32(start), end: int32(end), loop: loop}
	n := end - start
	r.opsUpTo = make([]int64, n+1)
	for j := 0; j < n; j++ {
		r.opsUpTo[j+1] = r.opsUpTo[j] + int64(len(df.bundles[start+j].ops))
	}
	return r
}

// accountTrip folds one (possibly partial) trip's pre-summed fetch
// statistics into every account, routed by that account's head-fetch
// verdict for this trip.
func (s *sim) accountTrip(issued, nullified int64) {
	for ai, a := range s.accts {
		a.stats.OpsIssued += issued
		a.stats.OpsNullified += nullified
		if s.fromBuf[ai] {
			a.stats.OpsFromBuffer += issued
			if ls := s.lss[ai]; ls != nil {
				ls.OpsBuffered += issued
			}
		} else if ls := s.lss[ai]; ls != nil {
			ls.OpsMemory += issued
		}
	}
}

// sampleTrip reconstructs the PMU sampling clock's firings across one
// (possibly partial) region trip analytically, without leaving the
// fast path: the trip's bundles issued at the contiguous cycles
// [iterBase, iterBase+count), so every scheduled sample cycle in that
// window fires at its exact interpretive position (samples that came
// due during non-issue cycles — call redirects — clamp forward to the
// first issue cycle, exactly as the interpretive `now >= next` compare
// does). Per-trip fetch verdicts are invariant (the buffer state
// machine only transitions at the head), so the per-account attribution
// is bit-identical to the per-bundle hook; the differential PMU test
// pins that. Must run after accountTrip so counter-track points see the
// trip's accounting. Callers pre-check that a sample is due inside the
// trip window (this function has a loop, so the compiler cannot inline
// the common no-sample case away; the guard keeps steady-state replay
// at two loads and a compare per trip).
func (s *sim) sampleTrip(fc *sched.FuncCode, fx *funcCtx, ri int, iterBase int64, count int) {
	if s.pmu == nil || count == 0 {
		return
	}
	r := &fx.df.regions[ri]
	pls := fx.regionPls[ri]
	last := iterBase + int64(count) - 1
	for s.pmu.Next() <= last {
		c := s.pmu.Next()
		if c < iterBase {
			c = iterBase
		}
		idx := c - iterBase
		pc := r.start + int32(idx)
		ops := r.opsUpTo[idx+1] - r.opsUpTo[idx]
		for ai, a := range s.accts {
			s.recordSample(a, fc.F.Name, pls[ai], pc, c, ops, s.fromBuf[ai])
		}
		s.pmu.Fire(c)
	}
}

// flushRegion emits the trip's first count SimIssue events for every
// account with an event sink, stamped with their actual cycles, as one
// batch per account. Must run before any exit-path event (redirect,
// loop exit) so each ring's order matches the interpretive path
// exactly.
func (s *sim) flushRegion(fc *sched.FuncCode, df *decodedFunc, r *region, iterBase int64, count int) {
	if count == 0 {
		return
	}
	start := int(r.start)
	for ai, a := range s.accts {
		if a.ring == nil {
			continue
		}
		aux := int64(0)
		if s.fromBuf[ai] {
			aux = 1
		}
		evs := s.evScratch[:0]
		for j := 0; j < count; j++ {
			evs = append(evs, obs.SimEvent{Cycle: iterBase + int64(j),
				Kind: obs.SimIssue, Run: a.label, Func: fc.F.Name,
				PC:  int32(start + j),
				Arg: int64(len(df.bundles[start+j].ops)), Aux: aux})
		}
		s.evScratch = evs
		a.ring.EmitBatch(evs)
	}
}

// runRegion executes trips of region ri until control leaves it,
// returning the bundle to resume the interpretive loop at. Entered at
// the region head; every trip — including the first — starts with the
// full per-account head fetch, so entry, the record→replay transition,
// per-iteration bookkeeping and residency events happen exactly as on
// the interpretive path. Within a trip the fetch verdict is invariant
// (the buffer state machine can only transition at the head), which is
// what lets per-bundle accounting collapse to per-trip sums.
func (s *sim) runRegion(f *frame, fx *funcCtx, ri int, sc *scratch) (int, error) {
	df := fx.df
	r := &df.regions[ri]
	fc := f.fc
	pls := fx.regionPls[ri]
	if r.loop && testRegionEnter != nil {
		for _, pl := range pls {
			if pl != nil {
				testRegionEnter(pl)
				break
			}
		}
	}
	start := int(r.start)
	n := int(r.end) - start
	maxC := s.opts.MaxCycles
	for {
		iterBase := s.now
		for ai, a := range s.accts {
			if pls[ai] != nil || a.buf.cur != nil {
				s.fromBuf[ai], s.lss[ai] = a.buf.fetch(pls[ai], fc, start, s, a)
			} else {
				s.fromBuf[ai], s.lss[ai] = false, nil
			}
		}
		var nullified int64
		for j := 0; j < n; j++ {
			if s.now > maxC {
				s.flushRegion(fc, df, r, iterBase, j)
				return 0, fmt.Errorf("vliw: cycle limit exceeded in %s (pc %d)", fc.F.Name, start+j)
			}
			db := &df.bundles[start+j]
			sc.branches = sc.branches[:0]
			sc.stores = sc.stores[:0]
			for i := range db.ops {
				d := &db.ops[i]
				guard := true
				if d.guard != 0 {
					guard = s.readPred(f, d.guard)
				}
				if !guard && d.kind != dCmpP {
					nullified++
					continue
				}
				switch d.kind {
				case dNop:

				case dALU:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if !d.unary {
						if d.bImm {
							b = d.imm
						} else {
							b = s.readReg(f, d.b)
						}
					}
					var v int64
					switch d.alu {
					case aAdd:
						v = ir.W32(a + b)
					case aSub:
						v = ir.W32(a - b)
					case aMov:
						v = ir.W32(a)
					case aAbs:
						if a < 0 {
							a = -a
						}
						v = ir.W32(a)
					case aMul:
						v = ir.W32(a * b)
					case aAnd:
						v = ir.W32(a & b)
					case aOr:
						v = ir.W32(a | b)
					case aXor:
						v = ir.W32(a ^ b)
					case aShl:
						v = ir.W32(a << (uint64(b) & 31))
					default:
						v = ir.EvalALU(d.opc, d.cmp, a, b)
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dCmpP:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if d.bImm {
						b = d.imm
					} else {
						b = s.readReg(f, d.b)
					}
					cond := d.cmp.Eval(a, b)
					for pi := uint8(0); pi < d.nPD; pi++ {
						pd := d.pd[pi]
						v, w := pd.Type.Update(guard, cond)
						if w {
							if d.lat == 1 {
								s.writePredFast(f, pd.Pred, v)
							} else {
								s.writePred(f, pd.Pred, v, d.lat)
							}
						}
					}

				case dSel:
					v := s.readReg(f, d.b)
					if s.readReg(f, d.a) == 0 {
						v = s.readReg(f, d.c)
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dLoad:
					addr := s.readReg(f, d.a) + d.imm
					v, err := s.load(d.opc, addr)
					if err != nil {
						if d.spec {
							v = 0
						} else {
							s.flushRegion(fc, df, r, iterBase, j+1)
							return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, start+j, err)
						}
					}
					if d.direct {
						f.regs[d.dest] = v
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, v)
					} else {
						s.writeReg(f, d.dest, v, d.lat)
					}

				case dStore:
					addr := s.readReg(f, d.a) + d.imm
					val := s.readReg(f, d.b)
					sc.stores = append(sc.stores, storeAction{opc: d.opc, addr: addr, val: val})
					if e := s.checkStore(d.opc, addr); e != nil {
						s.flushRegion(fc, df, r, iterBase, j+1)
						return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, start+j, e)
					}

				case dBr:
					var a, b int64
					if d.aImm {
						a = d.imm
					} else {
						a = s.readReg(f, d.a)
					}
					if d.bImm {
						b = d.imm
					} else {
						b = s.readReg(f, d.b)
					}
					if d.cmp.Eval(a, b) {
						sc.branches = append(sc.branches, branchAction{d: d, taken: true})
					} else if d.loopBack {
						sc.branches = append(sc.branches, branchAction{d: d, taken: false})
					}

				case dJump:
					sc.branches = append(sc.branches, branchAction{d: d, taken: true})

				case dBrCLoop:
					c := ir.W32(s.readReg(f, d.a) - 1)
					if d.direct {
						f.regs[d.dest] = c
					} else if d.lat == 1 {
						s.writeRegFast(f, d.dest, c)
					} else {
						s.writeReg(f, d.dest, c, d.lat)
					}
					sc.branches = append(sc.branches, branchAction{d: d, taken: c > 0})
				}
			}

			// Commit stores at end of cycle.
			for _, st := range sc.stores {
				_ = s.store(st.opc, st.addr, st.val)
			}

			if len(sc.branches) == 0 {
				if j < n-1 {
					// Linear fallthrough inside the region (the builder
					// checked fall == pc+1).
					s.tick(f)
					continue
				}
				// Fell past the region end with no branch decision: the
				// trip is complete; resume interpretively at the fall
				// target (for loops, the fetch there closes any open
				// residency).
				s.accountTrip(r.opsUpTo[n], nullified)
				if s.pmu != nil && s.pmu.Next() < iterBase+int64(n) {
					s.sampleTrip(fc, fx, ri, iterBase, n)
				}
				s.flushRegion(fc, df, r, iterBase, n)
				s.tick(f)
				next := int(db.fall)
				if next < 0 {
					return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
				}
				return next, nil
			}

			// A branch resolves this cycle: account the partial trip,
			// flush its events, then share the interpretive
			// control-resolution code so per-account penalties, redirect
			// events and buffer-leave transitions are bit-identical. A
			// predicted loop-back (streaming account) resolves to zero
			// penalty and no event inside resolveControl.
			s.accountTrip(r.opsUpTo[j+1], nullified)
			if s.pmu != nil && s.pmu.Next() <= iterBase+int64(j) {
				s.sampleTrip(fc, fx, ri, iterBase, j+1)
			}
			s.flushRegion(fc, df, r, iterBase, j+1)
			next := s.resolveControl(fc, start+j, sc)
			s.tick(f)
			if next == -2 {
				next = int(db.fall)
				if next < 0 {
					return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
				}
			}
			if r.loop && next == start {
				// Loop-back to the region head: next trip (its head
				// fetch does the per-iteration bookkeeping).
				break
			}
			return next, nil
		}
	}
}
