package vliw

import (
	"testing"

	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/machine"
	"lpbuf/internal/sched"
)

// kernelLoopProgram is a counted loop with memory traffic — the shape
// the replay fast path exists for.
func kernelLoopProgram(trips int64) *ir.Program {
	pb := irbuild.NewProgram(16 << 10)
	n := int(trips)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(3*i - 11)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, trips)
	f.MovI(acc, 0)
	f.Block("loop")
	v := f.Reg()
	f.LdW(v, pin, 0)
	f.MulI(v, v, 5)
	f.Add(acc, acc, v)
	f.StW(pout, 0, v)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// planSections builds a BufferPlan covering every loop section of the
// schedule (mirrors internal/loopbuffer's recognition, which this
// package cannot import without a cycle).
func planSections(code *sched.Code, capacity int) *BufferPlan {
	plan := &BufferPlan{Capacity: capacity}
	off := 0
	for _, name := range code.Prog.Order {
		fc := code.Funcs[name]
		for _, sec := range fc.Sections {
			isLoop := sec.Kind == sched.KindKernel
			counted := isLoop
			if sec.Kind == sched.KindStraight {
				for _, b := range sec.Bundles {
					for _, so := range b.Ops {
						if so.Op.LoopBack && so.Op.IsBranch() && so.TargetBundle == sec.Start {
							isLoop = true
							counted = so.Op.Opcode == ir.OpBrCLoop
						}
					}
				}
			}
			if !isLoop {
				continue
			}
			ops := 0
			for _, b := range sec.Bundles {
				ops += len(b.Ops)
			}
			plan.Loops = append(plan.Loops, &PlannedLoop{
				Func: name, StartBundle: sec.Start,
				EndBundle: sec.Start + len(sec.Bundles),
				Offset:    off, Ops: ops, Counted: counted,
				Label: name,
			})
			off += ops
		}
	}
	return plan
}

// TestRegionsQualify pins that representative planned loops — a plain
// counted self-loop and a modulo-scheduled kernel section — decode into
// loop regions with consistent prefix sums and head mapping, and that
// loopbuffer-shaped plans align with them. If a schedule change ever
// disqualifies these shapes, the simulator silently loses its fast
// path; this test makes that loud.
func TestRegionsQualify(t *testing.T) {
	for _, modulo := range []bool{false, true} {
		prog := kernelLoopProgram(50)
		code, err := sched.Schedule(prog, machine.Default(), sched.Options{EnableModulo: modulo})
		if err != nil {
			t.Fatal(err)
		}
		plan := planSections(code, 256)
		if len(plan.Loops) == 0 {
			t.Fatalf("modulo=%v: no loop sections recognized", modulo)
		}
		for _, pl := range plan.Loops {
			fc := code.Funcs[pl.Func]
			df := decodedOf(code, fc)
			ri := int32(-1)
			if pl.StartBundle < len(df.regionHead) {
				ri = df.regionHead[pl.StartBundle]
			}
			if ri < 0 {
				t.Fatalf("modulo=%v: loop %s has no region at its head", modulo, pl.Key())
			}
			r := &df.regions[ri]
			if !r.loop {
				t.Fatalf("modulo=%v: region at %s is not a loop region", modulo, pl.Key())
			}
			if int(r.start) != pl.StartBundle || int(r.end) != pl.EndBundle {
				t.Fatalf("modulo=%v: region [%d,%d) does not span loop %s [%d,%d)",
					modulo, r.start, r.end, pl.Key(), pl.StartBundle, pl.EndBundle)
			}
			n := int(r.end - r.start)
			if len(r.opsUpTo) != n+1 {
				t.Fatalf("modulo=%v: region shape mismatch for %s", modulo, pl.Key())
			}
			var total int64
			for pc := int(r.start); pc < int(r.end); pc++ {
				total += int64(len(df.bundles[pc].ops))
			}
			if r.opsUpTo[n] != total {
				t.Fatalf("modulo=%v: opsUpTo[%d] = %d, want %d", modulo, n, r.opsUpTo[n], total)
			}
			// A loopbuffer-shaped plan must align (and an empty plan too).
			bs := newBufferState(plan)
			if pl2, ok := alignedPlan(bs.loopsFor(pl.Func), r); !ok || pl2 == nil {
				t.Fatalf("modulo=%v: plan does not align with region for %s", modulo, pl.Key())
			}
			if pl2, ok := alignedPlan(nil, r); !ok || pl2 != nil {
				t.Fatalf("modulo=%v: empty plan should align (unplanned) for %s", modulo, pl.Key())
			}
		}
	}
}

// TestNestRegions pins the nest half of the fast path: a
// modulo-scheduled loop decodes into a kernel loop region *plus*
// straight regions covering code outside the kernel (the pre-loop ramp
// and prologue/epilogue bundles), so a whole resident nest replays
// through region trips rather than only its innermost kernel.
func TestNestRegions(t *testing.T) {
	prog := kernelLoopProgram(50)
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{EnableModulo: true})
	if err != nil {
		t.Fatal(err)
	}
	fc := code.Funcs["main"]
	df := decodedOf(code, fc)
	kernels := 0
	for _, sec := range fc.Sections {
		if sec.Kind == sched.KindKernel {
			kernels++
		}
	}
	if kernels == 0 {
		t.Skip("modulo scheduler produced no kernel section for this shape")
	}
	loops, straights := 0, 0
	for _, r := range df.regions {
		if r.loop {
			loops++
		} else {
			straights++
		}
	}
	if loops == 0 {
		t.Fatal("no loop region in a modulo-scheduled function")
	}
	if straights == 0 {
		t.Fatal("no straight region covering non-kernel code")
	}
	// Region heads must be mutually consistent.
	for ri, r := range df.regions {
		if df.regionHead[r.start] != int32(ri) {
			t.Fatalf("regionHead[%d] = %d, want %d", r.start, df.regionHead[r.start], ri)
		}
	}
}

// TestRegionRejectsCalls pins the fallback side of the qualification:
// a loop body containing a call must not become a region (calls
// re-enter the Go-recursive interpreter).
func TestRegionRejectsCalls(t *testing.T) {
	prog := callProgram()
	// Mark the call loop's back edge so it is planned like a wloop.
	for _, b := range prog.Funcs["main"].Blocks {
		if last := b.LastOp(); last != nil && last.IsBranch() && last.Target == b.ID {
			last.LoopBack = true
		}
	}
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSections(code, 256)
	if len(plan.Loops) == 0 {
		t.Fatal("no loop sections recognized")
	}
	for _, pl := range plan.Loops {
		df := decodedOf(code, code.Funcs[pl.Func])
		for _, r := range df.regions {
			if int(r.start) <= pl.StartBundle && pl.StartBundle < int(r.end) {
				t.Fatalf("loop %s with a call became region [%d,%d)", pl.Key(), r.start, r.end)
			}
		}
	}
}

// TestRegionEngages proves the fast path actually runs end-to-end: a
// buffered counted loop must enter the region runner at least once,
// and the run must still produce the right answer.
func TestRegionEngages(t *testing.T) {
	prog := kernelLoopProgram(100)
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSections(code, 256)
	entries := 0
	testRegionEnter = func(*PlannedLoop) { entries++ }
	defer func() { testRegionEnter = nil }()
	res, err := Run(code, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 {
		t.Fatal("region fast path never engaged on a buffered counted loop")
	}
	want := int64(0)
	for i := 0; i < 100; i++ {
		want += int64(3*i-11) * 5
	}
	if res.Ret != want {
		t.Fatalf("ret = %d, want %d", res.Ret, want)
	}
	// And NoFastPath must force it off.
	entries = 0
	if _, err := Run(code, plan, Options{NoFastPath: true}); err != nil {
		t.Fatal(err)
	}
	if entries != 0 {
		t.Fatalf("NoFastPath run entered the region runner %d times", entries)
	}
}
