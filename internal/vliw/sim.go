// Package vliw is the cycle-level simulator for the modeled 8-wide
// VLIW: in-order bundle issue with a register scoreboard (RAW
// interlocks), exposed operation latencies, taken-branch redirect
// penalties, and a compiler-managed loop buffer with the Table 3
// record/execute semantics. It executes scheduled code (sched.Code)
// and reports the fetch statistics the paper's evaluation is built on.
package vliw

import (
	"fmt"
	"io"

	"lpbuf/internal/ir"
	"lpbuf/internal/machine"
	"lpbuf/internal/obs"
	"lpbuf/internal/obs/pmu"
	"lpbuf/internal/sched"
)

// Stats aggregates a run.
type Stats struct {
	// Cycles is total execution time.
	Cycles int64
	// StallCycles counts scoreboard interlock stalls (included in
	// Cycles).
	StallCycles int64
	// BranchPenaltyCycles counts redirect penalties (included in
	// Cycles).
	BranchPenaltyCycles int64
	// OpsIssued counts non-nop operations issued (= fetched, since
	// NOPs are compressed away).
	OpsIssued int64
	// OpsFromBuffer counts operations issued out of the loop buffer.
	OpsFromBuffer int64
	// OpsNullified counts issued operations squashed by a false guard.
	OpsNullified int64
	// RecFetches counts implicit rec_[cw]loop operations fetched.
	RecFetches int64
	// Loops holds per-buffered-loop statistics keyed by "func:bundle".
	Loops map[string]*LoopStats
}

// BufferIssueRatio returns the fraction of issued ops served by the
// loop buffer.
func (s *Stats) BufferIssueRatio() float64 {
	if s.OpsIssued == 0 {
		return 0
	}
	return float64(s.OpsFromBuffer) / float64(s.OpsIssued)
}

// LoopStats tracks one buffered loop at runtime.
type LoopStats struct {
	// Entries counts entries into the loop from outside.
	Entries int64
	// Iterations counts total loop iterations executed.
	Iterations int64
	// BufferedIterations counts iterations issued from the buffer.
	BufferedIterations int64
	// OpsBuffered / OpsMemory split the loop's issued operations.
	OpsBuffered int64
	OpsMemory   int64
	// Recordings counts times the loop was (re)recorded.
	Recordings int64
}

// Result of a simulation.
type Result struct {
	Mem   []byte
	Ret   int64
	Stats Stats
	// Profile is this plan's sampled PMU profile (nil unless
	// Options.PMU enabled sampling).
	Profile *pmu.Profile
}

// Options configure a run.
type Options struct {
	EntryArgs []int64
	// MaxCycles bounds the run (0 = 4e9).
	MaxCycles int64
	// MaxDepth bounds call depth (0 = 256).
	MaxDepth int
	// Obs enables observability: cycle-level events into Obs.Sim's
	// bounded ring and post-run counter folding into Obs.Reg. Nil (or
	// nil fields) disables each sink; the hot loop then pays only nil
	// checks (see BenchmarkSimObsDisabled).
	Obs *obs.Obs
	// TraceLabel names this run in emitted events (e.g.
	// "g724dec/aggressive@64").
	TraceLabel string
	// DebugWriter receives the per-bundle debug trace (the old
	// VLIW_TRACE printf stream). Nil falls back to stderr when the
	// VLIW_TRACE environment variable is set, else off.
	DebugWriter io.Writer
	// NoFastPath forces the interpretive per-bundle path, disabling the
	// pre-decoded region fast path (see region.go). Results, statistics,
	// memory and obs events are bit-identical either way — the
	// differential fast-path test pins that — so this exists only for
	// that test and for debugging.
	NoFastPath bool
	// Engine, when non-nil, supplies pooled per-sim scratch (activation
	// frames, event buffers) shared across runs; see batch.go. Nil runs
	// allocate their own.
	Engine *Engine
	// PMU enables the sampling performance-monitoring unit: a
	// deterministic jittered clock fires on the issue clock and each
	// firing attributes one sample per account to (func, loop,
	// PC-bucket, buffer-state), yielding Result.Profile. Nil disables
	// sampling entirely — the hot path then pays one nil check per
	// bundle and allocates nothing (pinned by the obs alloc test).
	PMU *pmu.Config
}

// wbEntry models one in-flight write (EQ model: the value lands at
// readyAt; until then reads see the old contents). Entries live in the
// frame's writeback wheel, indexed by readyAt modulo the wheel size:
// because the wheel is strictly larger than the longest latency, two
// in-flight writes share a slot only when they land on the same cycle,
// and slot order is issue order — so a later-landing earlier write
// overwrites a sooner-landing later one, exactly as exposed writeback
// ports behave.
type wbEntry struct {
	val     int64
	readyAt int64
	reg     int32
	pred    bool
}

// wheelStride bounds the writes one wheel slot holds inline: two
// entries (a cmpp's pair of predicate destinations) for each of the
// machine's eight issue slots. Writes past the stride — several
// bundles' long- and short-latency results piling onto one landing
// cycle — overflow into the frame's spill slice, which stays empty in
// practice.
const wheelStride = 16

// wheelSlots is the writeback wheel's fixed slot count. It must be a
// power of two strictly greater than every modeled latency (Run
// enforces this), so two in-flight writes share a slot only when they
// land on the same cycle. A compile-time constant so the hot write
// path masks with a constant and indexes fixed arrays with provable
// bounds.
const (
	wheelSlots = 16
	wheelMask  = wheelSlots - 1
)

type frame struct {
	fc    *sched.FuncCode
	regs  []int64
	preds []bool
	// fast holds the current bundle's latency-1 results — the bulk of
	// all writes. They land unconditionally at the next tick, after the
	// wheel cohort (whose entries issued in earlier cycles), so the
	// write path is a plain append-to-array with no slot arithmetic.
	fast  [wheelStride]wbEntry
	nFast int32
	// wheel is the writeback pipeline for multi-cycle results, a flat
	// pointer-free fixed array of wheelSlots slots by wheelStride
	// entries: slot t&wheelMask holds the writes landing at cycle t
	// (wcount of them, in issue order). The clock tick drains the
	// current slot, so reads are plain array loads with no
	// pending-queue probe, and writes are constant-masked fixed-array
	// stores — no slice headers, no GC write barriers, no bounds checks
	// the prover can't discharge. While the frame is suspended across a
	// call its slots go stale; drainDue catches the frame up on return.
	wheel  [wheelSlots * wheelStride]wbEntry
	wcount [wheelSlots]int32
	spill  []wbEntry
}

// account is one batched run's accounting context. The architectural
// execution — registers, memory, control flow, guard outcomes, the
// issue clock — is completely independent of buffer plans (plans affect
// only fetch accounting: which bundles issue from the buffer, and which
// redirects are predicted away). RunBatch exploits that by executing
// the program once and folding every plan's statistics, penalties and
// events through its own account as each bundle issues.
type account struct {
	stats Stats
	// penalty accumulates this plan's redirect bubbles. They add to the
	// reported cycle count but never shift writebacks (which continue
	// through fetch bubbles in a real pipeline), so accounts can diverge
	// in penalty while sharing one issue clock.
	penalty int64
	buf     *bufferState
	// ring is the cycle-level event sink (nil when disabled); label
	// names the run in emitted events.
	ring  *obs.SimTrace
	label string
	// prof accumulates this plan's PMU samples (nil when sampling is
	// off).
	prof *pmu.Profile
}

type sim struct {
	code *sched.Code
	mem  []byte
	// now is the semantic issue clock: exactly one bundle per tick, so
	// the EQ-model writeback schedule is position-independent.
	now int64
	// accts holds one accounting context per buffer plan. Solo Run is a
	// one-account batch, so every path below is the batch path.
	accts []*account
	opts  Options
	dbg   *debugLog
	// fastOK gates the region replay fast path: off under the
	// per-bundle debug trace (which wants every fetch printed) or when
	// Options.NoFastPath forces the interpretive path.
	fastOK bool
	// evScratch backs the region runner's batched SimIssue emission.
	evScratch []obs.SimEvent
	// framePool recycles activation frames per callee.
	framePool map[*sched.FuncCode][]*frame
	// fctx caches the per-function decode image and per-account
	// plan/region alignment tables (see funcCtxOf in region.go).
	fctx map[*sched.FuncCode]*funcCtx
	// fromBuf/lss are the per-account results of the current fetch,
	// sized len(accts) once so the per-bundle path never allocates.
	fromBuf []bool
	lss     []*LoopStats
	// pmu is the shared sampling clock (nil when sampling is off). One
	// clock per batch: sample cycles are plan-independent, so every
	// account profiles the same cycles of the one shared execution.
	pmu *pmu.Clock
}

// Run executes scheduled code from the program entry under one buffer
// plan. It is a single-account batch — see RunBatch in batch.go.
func Run(code *sched.Code, buffers *BufferPlan, opts Options) (*Result, error) {
	rs, err := RunBatch(code, []*BufferPlan{buffers}, BatchOptions{Options: opts})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// foldStats accumulates one run's totals into the metrics registry.
// It runs once per simulation, after the hot loop, so enabling metrics
// costs nothing per cycle.
func foldStats(reg *obs.Registry, st *Stats) {
	reg.Counter("sim.runs").Inc()
	reg.Counter("sim.cycles").Add(st.Cycles)
	reg.Counter("sim.stall_cycles").Add(st.StallCycles)
	reg.Counter("sim.branch_penalty_cycles").Add(st.BranchPenaltyCycles)
	reg.Counter("sim.ops_issued").Add(st.OpsIssued)
	reg.Counter("sim.ops_from_buffer").Add(st.OpsFromBuffer)
	reg.Counter("sim.ops_from_memory").Add(st.OpsIssued - st.OpsFromBuffer)
	reg.Counter("sim.ops_nullified").Add(st.OpsNullified)
	reg.Counter("sim.rec_fetches").Add(st.RecFetches)
	for _, ls := range st.Loops {
		reg.Counter("sim.loop.entries").Add(ls.Entries)
		reg.Counter("sim.loop.iterations").Add(ls.Iterations)
		reg.Counter("sim.loop.buffered_iterations").Add(ls.BufferedIterations)
		reg.Counter("sim.loop.buffer_hits").Add(ls.OpsBuffered)
		reg.Counter("sim.loop.buffer_misses").Add(ls.OpsMemory)
		reg.Counter("sim.loop.recordings").Add(ls.Recordings)
	}
	reg.Histogram("sim.cycles_per_run").Observe(st.Cycles)
}

// recordSample attributes one PMU sample for one account: the sampled
// issue point maps to (func, loop, PC-bucket, buffer-state) and the
// account's cumulative fetch/redirect counters become one counter-track
// point. Shared by the interpretive per-bundle hook and the region
// runner's analytic catch-up (sampleTrip) so attribution is
// bit-identical on both paths — the differential PMU test pins that.
// Counter-track values are cumulative as of the account's current
// bookkeeping, which the fast path advances per trip rather than per
// bundle; the attribution samples are exact either way, the series is
// sampled by construction.
func (s *sim) recordSample(a *account, fn string, pl *PlannedLoop, pc int32, cycle, ops int64, fromBuffer bool) {
	if a.prof == nil {
		return
	}
	st := pmu.StateMemory
	loopKey, loopLabel := "", ""
	if pl != nil {
		loopKey, loopLabel = pl.Key(), pl.Label
		if fromBuffer {
			st = pmu.StateReplay
		} else {
			st = pmu.StateRecord
		}
	}
	a.prof.Record(fn, loopKey, loopLabel, pc, st, ops)
	a.prof.Observe(cycle, a.stats.OpsFromBuffer,
		a.stats.OpsIssued-a.stats.OpsFromBuffer, a.stats.BranchPenaltyCycles)
}

// wheelSize returns the writeback-wheel size for a latency table: the
// smallest power of two strictly greater than every latency, so that
// an in-flight write never shares a slot with a write landing on a
// different cycle.
func wheelSize(lat machine.Latencies) int64 {
	maxLat := 1
	for _, l := range []int{lat.IALU, lat.IMul, lat.IDiv, lat.Load,
		lat.Store, lat.FP, lat.Branch, lat.Pred} {
		if l > maxLat {
			maxLat = l
		}
	}
	w := int64(2)
	for w <= int64(maxLat) {
		w *= 2
	}
	return w
}

func (s *sim) newFrame(fc *sched.FuncCode) *frame {
	f := &frame{
		fc:    fc,
		regs:  make([]int64, fc.F.NumRegs()+1),
		preds: make([]bool, fc.F.NumPreds()+1),
	}
	f.preds[0] = true
	return f
}

// getFrame reuses a pooled activation frame for fc, or allocates one.
// Call-heavy programs re-enter the same callees millions of times; the
// pool turns those per-call frame allocations into a slice pop plus a
// register-file clear.
func (s *sim) getFrame(fc *sched.FuncCode) *frame {
	l := s.framePool[fc]
	if len(l) == 0 {
		return s.newFrame(fc)
	}
	f := l[len(l)-1]
	s.framePool[fc] = l[:len(l)-1]
	clear(f.regs)
	clear(f.preds)
	f.preds[0] = true
	f.nFast = 0
	f.wcount = [wheelSlots]int32{}
	f.spill = f.spill[:0]
	return f
}

func (s *sim) putFrame(f *frame) {
	s.framePool[f.fc] = append(s.framePool[f.fc], f)
}

// land applies one writeback.
func (f *frame) land(e *wbEntry) {
	if e.pred {
		f.preds[e.reg] = e.val != 0
	} else {
		f.regs[e.reg] = e.val
	}
}

// tick advances the clock one cycle and lands the frame's writes due
// at the new time. While a frame executes, every entry in the current
// slot is due exactly now (the wheel outspans the longest latency, and
// drainDue caught the frame up after any suspension), and slot order
// is issue order. Spill entries were issued after their landing slot
// filled — after every inline entry for the same cycle — so landing
// the slot first keeps issue order.
func (s *sim) tick(f *frame) {
	s.now++
	// A spill entry only exists while its landing slot is full, so
	// wcount and nFast together decide whether anything lands this
	// cycle.
	if f.wcount[s.now&wheelMask]|f.nFast != 0 {
		s.tickLand(f)
	}
}

// tickLand is tick's landing half, outlined so the nothing-due fast
// path inlines at every cycle-advance site. Landing order within the
// cycle is issue order: the wheel cohort (issued in earlier cycles)
// first, then its spill overflow, then the previous bundle's
// latency-1 results.
func (s *sim) tickLand(f *frame) {
	slot := s.now & wheelMask
	c := int64(f.wcount[slot])
	if c != 0 {
		base := slot * wheelStride
		for i := int64(0); i < c; i++ {
			f.land(&f.wheel[base+i])
		}
		f.wcount[slot] = 0
	}
	if len(f.spill) != 0 {
		kept := f.spill[:0]
		for i := range f.spill {
			if f.spill[i].readyAt == s.now {
				f.land(&f.spill[i])
			} else {
				kept = append(kept, f.spill[i])
			}
		}
		f.spill = kept
	}
	if n := int64(f.nFast); n != 0 {
		for i := int64(0); i < n; i++ {
			f.land(&f.fast[i])
		}
		f.nFast = 0
	}
}

// drainDue lands every write due by now, in readyAt order, after the
// frame sat suspended through a callee's cycles. All inline entries in
// one slot share a landing cycle (writes still in flight were issued
// within one wheel span of each other), so cohorts land whole, in
// ascending readyAt order, with a slot's spill overflow after its
// inline entries.
func (s *sim) drainDue(f *frame) {
	for {
		best := int64(-1)
		for slot := int64(0); slot < wheelSlots; slot++ {
			if f.wcount[slot] == 0 {
				continue
			}
			if t := f.wheel[slot*wheelStride].readyAt; t <= s.now && (best < 0 || t < best) {
				best = t
			}
		}
		for i := range f.spill {
			if t := f.spill[i].readyAt; t <= s.now && (best < 0 || t < best) {
				best = t
			}
		}
		if f.nFast != 0 {
			if t := f.fast[0].readyAt; t <= s.now && (best < 0 || t < best) {
				best = t
			}
		}
		if best < 0 {
			return
		}
		slot := best & wheelMask
		base := slot * wheelStride
		if c := int64(f.wcount[slot]); c != 0 && f.wheel[base].readyAt == best {
			for i := int64(0); i < c; i++ {
				f.land(&f.wheel[base+i])
			}
			f.wcount[slot] = 0
		}
		if len(f.spill) != 0 {
			kept := f.spill[:0]
			for i := range f.spill {
				if f.spill[i].readyAt == best {
					f.land(&f.spill[i])
				} else {
					kept = append(kept, f.spill[i])
				}
			}
			f.spill = kept
		}
		if n := int64(f.nFast); n != 0 && f.fast[0].readyAt == best {
			for i := int64(0); i < n; i++ {
				f.land(&f.fast[i])
			}
			f.nFast = 0
		}
	}
}

// readReg samples the register file at issue time: in-flight writes
// are invisible until their tick lands them, so this is a plain load.
func (s *sim) readReg(f *frame, r ir.Reg) int64 {
	return f.regs[r]
}

// writeRegFast queues a latency-1 register result — the overwhelmingly
// common case — on the frame's append-only fast list: it lands at the
// next tick, after any wheel or spill cohort due the same cycle (those
// were issued on earlier cycles, so landing order still follows issue
// order). The list holds at most one bundle's writes — width ≤ 8 ops
// produce ≤ 16 entries even when every op defines two predicates, and
// tick drains it every cycle — so the spill fallback only fires on a
// hypothetically wider machine. Call sites dispatch on the decoded
// latency so both this and writeReg stay inside the inlining budget.
func (s *sim) writeRegFast(f *frame, r ir.Reg, v int64) {
	if r == 0 {
		return
	}
	n := f.nFast
	e := wbEntry{val: ir.W32(v), readyAt: s.now + 1, reg: int32(r)}
	if n < wheelStride {
		f.fast[n] = e
		f.nFast = n + 1
		return
	}
	f.spill = append(f.spill, e)
}

// writeReg queues a multi-cycle result into its landing slot on the
// writeback wheel, spilling past a full slot. Latency-1 results take
// writeRegFast instead (the call sites dispatch on d.lat).
func (s *sim) writeReg(f *frame, r ir.Reg, v int64, lat int64) {
	if r == 0 {
		return
	}
	e := wbEntry{val: ir.W32(v), readyAt: s.now + lat, reg: int32(r)}
	slot := e.readyAt & wheelMask
	c := f.wcount[slot]
	if c < wheelStride {
		f.wheel[slot*wheelStride+int64(c)] = e
		f.wcount[slot] = c + 1
		return
	}
	f.spill = append(f.spill, e)
}

func (s *sim) readPred(f *frame, p ir.PredReg) bool {
	return f.preds[p]
}

// writePredFast is writeRegFast for predicate results.
func (s *sim) writePredFast(f *frame, p ir.PredReg, v bool) {
	if p == 0 {
		return
	}
	var iv int64
	if v {
		iv = 1
	}
	n := f.nFast
	e := wbEntry{val: iv, readyAt: s.now + 1, reg: int32(p), pred: true}
	if n < wheelStride {
		f.fast[n] = e
		f.nFast = n + 1
		return
	}
	f.spill = append(f.spill, e)
}

// writePred is writeReg for multi-cycle predicate results.
func (s *sim) writePred(f *frame, p ir.PredReg, v bool, lat int64) {
	if p == 0 {
		return
	}
	var iv int64
	if v {
		iv = 1
	}
	e := wbEntry{val: iv, readyAt: s.now + lat, reg: int32(p), pred: true}
	slot := e.readyAt & wheelMask
	c := f.wcount[slot]
	if c < wheelStride {
		f.wheel[slot*wheelStride+int64(c)] = e
		f.wcount[slot] = c + 1
		return
	}
	f.spill = append(f.spill, e)
}

// run executes one function invocation (recursively via Go for calls).
func (s *sim) run(fc *sched.FuncCode) (int64, error) {
	f := s.getFrame(fc)
	for i, p := range fc.F.Params {
		if i < len(s.opts.EntryArgs) {
			f.regs[p] = ir.W32(s.opts.EntryArgs[i])
		}
	}
	ret, err := s.exec(f, 0)
	if err == nil {
		s.putFrame(f)
	}
	return ret, err
}

type callCtx struct {
	depth int
}

// branchAction and storeAction defer control-flow and memory effects
// to end-of-cycle commit. Plain values (no closures) so the exec
// scratch buffers stay allocation-free in steady state.
type branchAction struct {
	d     *dop
	taken bool
}

type storeAction struct {
	opc  ir.Opcode
	addr int64
	val  int64
}

// scratch holds the per-activation issue buffers, reused across
// cycles; nested calls recurse into execDepth and get their own.
type scratch struct {
	branches []branchAction
	stores   []storeAction
}

// exec runs from bundle pc until return.
func (s *sim) exec(f *frame, pc int) (int64, error) {
	depth := 0
	return s.execDepth(f, pc, &callCtx{depth: depth})
}

func (s *sim) execDepth(f *frame, pc int, cc *callCtx) (int64, error) {
	if cc.depth > s.opts.MaxDepth {
		return 0, fmt.Errorf("vliw: call depth exceeded in %s", f.fc.F.Name)
	}
	fc := f.fc
	// Per-activation hoists: the pre-decoded image and every account's
	// planned-loop table are resolved once here, so the per-cycle path
	// below indexes slices instead of probing string-keyed maps.
	fx := s.funcCtxOf(fc)
	df := fx.df
	maxC := s.opts.MaxCycles
	var sc scratch
	for {
		if s.now > maxC {
			return 0, fmt.Errorf("vliw: cycle limit exceeded in %s (pc %d)", fc.F.Name, pc)
		}
		if pc < 0 || pc >= len(df.bundles) {
			return 0, fmt.Errorf("vliw: pc %d out of range in %s", pc, fc.F.Name)
		}

		// Region fast path: at the head of a replayable region — a
		// resident loop or a straight-line run — whole trips execute
		// through the pre-decoded region runner (see region.go) with
		// per-trip batched accounting for every account, provided each
		// account's plan aligns with the region. The runner does the
		// per-trip head fetch itself, so all buffer-state transitions
		// (entry, record→replay, exit) happen exactly as interpretively.
		if s.fastOK && len(df.regionHead) > 0 {
			if ri := df.regionHead[pc]; ri >= 0 && fx.regionUse[ri] {
				next, err := s.runRegion(f, fx, int(ri), &sc)
				if err != nil {
					return 0, err
				}
				pc = next
				continue
			}
		}

		// EQ model: no interlocks. Reads sample the register file at
		// issue time; the compiler is responsible for timing (the
		// scheduler pads section ends and shadows branches).

		db := &df.bundles[pc]
		nOps := int64(len(db.ops))
		// PMU sampling: the clock is compared against the issue cycle
		// once per bundle (sampling off costs exactly this nil check).
		// The region fast path above reconstructs the same firings
		// analytically per trip (see sampleTrip), so both paths sample
		// identical cycles.
		sample := s.pmu != nil && s.now >= s.pmu.Next()
		// Per-account loop-buffer bookkeeping for this fetch, issue
		// event, and fetch statistics (per-bundle sums: every op in the
		// bundle counts as issued, nullified or not, from one fetch
		// source). Outside any planned loop with no residency open,
		// fetch is a no-op by construction — skip the call on that
		// (most common) path.
		for ai, a := range s.accts {
			var pl *PlannedLoop
			if tab := fx.tabs[ai]; pc < len(tab) {
				pl = tab[pc]
			}
			fromBuffer, ls := false, (*LoopStats)(nil)
			if pl != nil || a.buf.cur != nil {
				fromBuffer, ls = a.buf.fetch(pl, fc, pc, s, a)
			}
			s.fromBuf[ai] = fromBuffer
			if a.ring != nil {
				aux := int64(0)
				if fromBuffer {
					aux = 1
				}
				a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimIssue,
					Run: a.label, Func: fc.F.Name, PC: int32(pc),
					Arg: nOps, Aux: aux})
			}
			a.stats.OpsIssued += nOps
			if fromBuffer {
				a.stats.OpsFromBuffer += nOps
				if ls != nil {
					ls.OpsBuffered += nOps
				}
			} else if ls != nil {
				ls.OpsMemory += nOps
			}
			if sample {
				s.recordSample(a, fc.F.Name, pl, int32(pc), s.now, nOps, fromBuffer)
			}
		}
		if sample {
			s.pmu.Fire(s.now)
		}
		if s.dbg != nil {
			s.dbg.printf("t=%d pc=%d buf=%v\n", s.now, pc, s.fromBuf[0])
		}
		sc.branches = sc.branches[:0]
		sc.stores = sc.stores[:0]
		retired := false
		var retVal int64
		callNext := -1
		var nullified int64

		for i := range db.ops {
			d := &db.ops[i]
			if s.dbg != nil {
				s.dbg.printf("  issue %s\n", d.op)
			}
			guard := true
			if d.guard != 0 {
				guard = s.readPred(f, d.guard)
			}
			if !guard && d.kind != dCmpP {
				nullified++
				continue
			}
			switch d.kind {
			case dNop:

			case dALU:
				var a, b int64
				if d.aImm {
					a = d.imm
				} else {
					a = s.readReg(f, d.a)
				}
				if !d.unary {
					if d.bImm {
						b = d.imm
					} else {
						b = s.readReg(f, d.b)
					}
				}
				var v int64
				switch d.alu {
				case aAdd:
					v = ir.W32(a + b)
				case aSub:
					v = ir.W32(a - b)
				case aMov:
					v = ir.W32(a)
				case aAbs:
					if a < 0 {
						a = -a
					}
					v = ir.W32(a)
				case aMul:
					v = ir.W32(a * b)
				case aAnd:
					v = ir.W32(a & b)
				case aOr:
					v = ir.W32(a | b)
				case aXor:
					v = ir.W32(a ^ b)
				case aShl:
					v = ir.W32(a << (uint64(b) & 31))
				default:
					v = ir.EvalALU(d.opc, d.cmp, a, b)
				}
				if d.direct {
					f.regs[d.dest] = v
				} else if d.lat == 1 {
					s.writeRegFast(f, d.dest, v)
				} else {
					s.writeReg(f, d.dest, v, d.lat)
				}

			case dCmpP:
				var a, b int64
				if d.aImm {
					a = d.imm
				} else {
					a = s.readReg(f, d.a)
				}
				if d.bImm {
					b = d.imm
				} else {
					b = s.readReg(f, d.b)
				}
				cond := d.cmp.Eval(a, b)
				for pi := uint8(0); pi < d.nPD; pi++ {
					pd := d.pd[pi]
					v, w := pd.Type.Update(guard, cond)
					if w {
						if d.lat == 1 {
							s.writePredFast(f, pd.Pred, v)
						} else {
							s.writePred(f, pd.Pred, v, d.lat)
						}
					}
				}

			case dSel:
				v := s.readReg(f, d.b)
				if s.readReg(f, d.a) == 0 {
					v = s.readReg(f, d.c)
				}
				if d.direct {
					f.regs[d.dest] = v
				} else if d.lat == 1 {
					s.writeRegFast(f, d.dest, v)
				} else {
					s.writeReg(f, d.dest, v, d.lat)
				}

			case dLoad:
				addr := s.readReg(f, d.a) + d.imm
				v, err := s.load(d.opc, addr)
				if err != nil {
					if d.spec {
						v = 0
					} else {
						return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, pc, err)
					}
				}
				if d.direct {
					f.regs[d.dest] = v
				} else if d.lat == 1 {
					s.writeRegFast(f, d.dest, v)
				} else {
					s.writeReg(f, d.dest, v, d.lat)
				}

			case dStore:
				addr := s.readReg(f, d.a) + d.imm
				val := s.readReg(f, d.b)
				sc.stores = append(sc.stores, storeAction{opc: d.opc, addr: addr, val: val})
				if e := s.checkStore(d.opc, addr); e != nil {
					return 0, fmt.Errorf("%s in %s pc=%d: %v", d.op, fc.F.Name, pc, e)
				}

			case dBr:
				var a, b int64
				if d.aImm {
					a = d.imm
				} else {
					a = s.readReg(f, d.a)
				}
				if d.bImm {
					b = d.imm
				} else {
					b = s.readReg(f, d.b)
				}
				if d.cmp.Eval(a, b) {
					sc.branches = append(sc.branches, branchAction{d: d, taken: true})
				} else if d.loopBack {
					sc.branches = append(sc.branches, branchAction{d: d, taken: false})
				}

			case dJump:
				sc.branches = append(sc.branches, branchAction{d: d, taken: true})

			case dBrCLoop:
				c := ir.W32(s.readReg(f, d.a) - 1)
				if d.direct {
					f.regs[d.dest] = c
				} else if d.lat == 1 {
					s.writeRegFast(f, d.dest, c)
				} else {
					s.writeReg(f, d.dest, c, d.lat)
				}
				sc.branches = append(sc.branches, branchAction{d: d, taken: c > 0})

			case dCall:
				rv, next, err := s.execCall(f, d, pc, cc, df)
				if err != nil {
					return 0, err
				}
				if len(d.op.Dest) > 0 {
					s.writeRegFast(f, d.dest, rv)
				}
				callNext = next

			case dRet:
				retVal = s.readReg(f, d.a)
				retired = true

			default:
				return 0, fmt.Errorf("vliw: unhandled op %s", d.op)
			}
		}

		if nullified != 0 {
			for _, a := range s.accts {
				a.stats.OpsNullified += nullified
			}
		}
		// Commit stores at end of cycle.
		for _, st := range sc.stores {
			_ = s.store(st.opc, st.addr, st.val)
		}
		if retired {
			return retVal, nil
		}
		if callNext >= 0 {
			pc = callNext
			s.tick(f)
			continue
		}

		next := -2
		if len(sc.branches) != 0 {
			next = s.resolveControl(fc, pc, &sc)
		}
		s.tick(f)
		if next != -2 {
			pc = next
		} else {
			pc = int(db.fall)
			if pc < 0 {
				return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
			}
		}
	}
}

// execCall performs one call op: transfers into the callee (recursing
// via Go), charges call/return redirect penalties and returns the
// callee's value plus the bundle to resume at.
func (s *sim) execCall(f *frame, d *dop, pc int, cc *callCtx, df *decodedFunc) (int64, int, error) {
	if d.callee == nil {
		return 0, 0, fmt.Errorf("vliw: call to unknown %q", d.op.Callee)
	}
	nf := s.getFrame(d.callee)
	for i, parm := range d.callee.F.Params {
		nf.regs[parm] = s.readReg(f, d.op.Src[i])
	}
	s.now++
	bp := int64(s.code.Mach.BranchPenalty)
	for _, a := range s.accts {
		a.penalty += bp
		a.stats.BranchPenaltyCycles += bp
		if a.ring != nil {
			a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimCall,
				Run: a.label, Func: d.op.Callee, PC: int32(pc)})
		}
	}
	cc.depth++
	rv, err := s.execDepth(nf, 0, cc)
	cc.depth--
	if err != nil {
		return 0, 0, err
	}
	s.putFrame(nf)
	// The caller's wheel slots went stale while it sat suspended through
	// the callee's cycles; land everything now due before resuming.
	s.drainDue(f)
	for _, a := range s.accts {
		a.penalty += bp
		a.stats.BranchPenaltyCycles += bp
		if a.ring != nil {
			a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRet,
				Run: a.label, Func: d.op.Callee, PC: int32(pc)})
		}
	}
	// Resume after the call bundle.
	next := int(df.bundles[pc].fall)
	if next < 0 {
		return 0, 0, fmt.Errorf("vliw: call at function end without fallthrough")
	}
	return rv, next, nil
}

// resolveControl applies end-of-cycle control transfer: the first
// taken branch in slot order wins (the schedule guarantees at most one
// is truly taken); untaken loop-backs charge their exit penalty on the
// way. Returns the winning target bundle, or -2 for fallthrough.
// Branch decisions are architectural (identical for every account);
// penalties and buffer-state transitions are per-account — a plan that
// keeps the loop resident predicts its loop-back for free while an
// unplanned account pays the redirect, on the same control transfer.
// Shared by the interpretive loop and the region runner's exit path so
// both charge bit-identical penalties and emit identical redirects.
func (s *sim) resolveControl(fc *sched.FuncCode, pc int, sc *scratch) int {
	next := -2
	for _, ba := range sc.branches {
		if !ba.taken {
			// Untaken loop-back: loop exit.
			for _, a := range s.accts {
				p := a.buf.exitPenalty(fc, pc, ba.d.loopBack, s, a)
				a.penalty += p
				a.stats.BranchPenaltyCycles += p
				if p > 0 && a.ring != nil {
					a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRedirect,
						Run: a.label, Func: fc.F.Name, PC: int32(pc), Arg: p})
				}
			}
			continue
		}
		next = int(ba.d.target)
		for _, a := range s.accts {
			p := a.buf.takenPenalty(fc, pc, ba.d.loopBack, int(ba.d.target), s, a)
			a.penalty += p
			a.stats.BranchPenaltyCycles += p
			if p > 0 && a.ring != nil {
				a.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRedirect,
					Run: a.label, Func: fc.F.Name, PC: int32(pc), Arg: p})
			}
		}
		break
	}
	return next
}

func (s *sim) load(opc ir.Opcode, addr int64) (int64, error) {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(s.mem)) {
		return 0, fmt.Errorf("load out of range addr=%d", addr)
	}
	switch opc {
	case ir.OpLdB:
		return int64(int8(s.mem[addr])), nil
	case ir.OpLdBU:
		return int64(s.mem[addr]), nil
	case ir.OpLdH:
		return int64(int16(uint16(s.mem[addr]) | uint16(s.mem[addr+1])<<8)), nil
	case ir.OpLdHU:
		return int64(uint16(s.mem[addr]) | uint16(s.mem[addr+1])<<8), nil
	default:
		v := uint32(s.mem[addr]) | uint32(s.mem[addr+1])<<8 |
			uint32(s.mem[addr+2])<<16 | uint32(s.mem[addr+3])<<24
		return int64(int32(v)), nil
	}
}

func (s *sim) checkStore(opc ir.Opcode, addr int64) error {
	if addr < 0 || addr+memSize(opc) > int64(len(s.mem)) {
		return fmt.Errorf("store out of range addr=%d", addr)
	}
	return nil
}

func (s *sim) store(opc ir.Opcode, addr, v int64) error {
	switch opc {
	case ir.OpStB:
		s.mem[addr] = byte(v)
	case ir.OpStH:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(uint64(v) >> 8)
	default:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(uint64(v) >> 8)
		s.mem[addr+2] = byte(uint64(v) >> 16)
		s.mem[addr+3] = byte(uint64(v) >> 24)
	}
	return nil
}

func memSize(opc ir.Opcode) int64 {
	switch opc {
	case ir.OpLdB, ir.OpLdBU, ir.OpStB:
		return 1
	case ir.OpLdH, ir.OpLdHU, ir.OpStH:
		return 2
	default:
		return 4
	}
}
