// Package vliw is the cycle-level simulator for the modeled 8-wide
// VLIW: in-order bundle issue with a register scoreboard (RAW
// interlocks), exposed operation latencies, taken-branch redirect
// penalties, and a compiler-managed loop buffer with the Table 3
// record/execute semantics. It executes scheduled code (sched.Code)
// and reports the fetch statistics the paper's evaluation is built on.
package vliw

import (
	"fmt"
	"io"

	"lpbuf/internal/ir"
	"lpbuf/internal/obs"
	"lpbuf/internal/sched"
)

// Stats aggregates a run.
type Stats struct {
	// Cycles is total execution time.
	Cycles int64
	// StallCycles counts scoreboard interlock stalls (included in
	// Cycles).
	StallCycles int64
	// BranchPenaltyCycles counts redirect penalties (included in
	// Cycles).
	BranchPenaltyCycles int64
	// OpsIssued counts non-nop operations issued (= fetched, since
	// NOPs are compressed away).
	OpsIssued int64
	// OpsFromBuffer counts operations issued out of the loop buffer.
	OpsFromBuffer int64
	// OpsNullified counts issued operations squashed by a false guard.
	OpsNullified int64
	// RecFetches counts implicit rec_[cw]loop operations fetched.
	RecFetches int64
	// Loops holds per-buffered-loop statistics keyed by "func:bundle".
	Loops map[string]*LoopStats
}

// BufferIssueRatio returns the fraction of issued ops served by the
// loop buffer.
func (s *Stats) BufferIssueRatio() float64 {
	if s.OpsIssued == 0 {
		return 0
	}
	return float64(s.OpsFromBuffer) / float64(s.OpsIssued)
}

// LoopStats tracks one buffered loop at runtime.
type LoopStats struct {
	// Entries counts entries into the loop from outside.
	Entries int64
	// Iterations counts total loop iterations executed.
	Iterations int64
	// BufferedIterations counts iterations issued from the buffer.
	BufferedIterations int64
	// OpsBuffered / OpsMemory split the loop's issued operations.
	OpsBuffered int64
	OpsMemory   int64
	// Recordings counts times the loop was (re)recorded.
	Recordings int64
}

// Result of a simulation.
type Result struct {
	Mem   []byte
	Ret   int64
	Stats Stats
}

// Options configure a run.
type Options struct {
	EntryArgs []int64
	// MaxCycles bounds the run (0 = 4e9).
	MaxCycles int64
	// MaxDepth bounds call depth (0 = 256).
	MaxDepth int
	// Obs enables observability: cycle-level events into Obs.Sim's
	// bounded ring and post-run counter folding into Obs.Reg. Nil (or
	// nil fields) disables each sink; the hot loop then pays only nil
	// checks (see BenchmarkSimObsDisabled).
	Obs *obs.Obs
	// TraceLabel names this run in emitted events (e.g.
	// "g724dec/aggressive@64").
	TraceLabel string
	// DebugWriter receives the per-bundle debug trace (the old
	// VLIW_TRACE printf stream). Nil falls back to stderr when the
	// VLIW_TRACE environment variable is set, else off.
	DebugWriter io.Writer
}

// pending models one in-flight register write (EQ model: the value
// lands at readyAt; until then reads see the old contents). A register
// may have several writes in flight; they land in readyAt order, so a
// later-landing earlier write overwrites a sooner-landing later one,
// exactly as exposed writeback ports behave.
type pending struct {
	val     int64
	readyAt int64
}

type pendingP struct {
	val     bool
	readyAt int64
}

type frame struct {
	fc       *sched.FuncCode
	regs     []int64
	regPend  [][]pending
	preds    []bool
	predPend [][]pendingP
}

type sim struct {
	code *sched.Code
	mem  []byte
	// now is the semantic issue clock: exactly one bundle per tick, so
	// the EQ-model writeback schedule is position-independent. Redirect
	// penalties are fetch bubbles accounted separately in penalty (they
	// add to the reported cycle count but do not shift writebacks,
	// which continue through bubbles in a real pipeline).
	now     int64
	penalty int64
	stats   Stats
	buf     *bufferState
	opts    Options
	// ring is the cycle-level event sink (nil when disabled); label
	// names the run in emitted events.
	ring  *obs.SimTrace
	label string
	dbg   *debugLog
}

// Run executes scheduled code from the program entry.
func Run(code *sched.Code, buffers *BufferPlan, opts Options) (*Result, error) {
	s := &sim{
		code:  code,
		mem:   make([]byte, code.Prog.MemSize),
		opts:  opts,
		buf:   newBufferState(buffers),
		ring:  opts.Obs.SimRing(),
		label: opts.TraceLabel,
		dbg:   newDebugLog(opts),
	}
	s.stats.Loops = map[string]*LoopStats{}
	if s.opts.MaxCycles == 0 {
		s.opts.MaxCycles = 4e9
	}
	if s.opts.MaxDepth == 0 {
		s.opts.MaxDepth = 256
	}
	for _, g := range code.Prog.Globals {
		copy(s.mem[g.Offset:g.Offset+g.Size], g.Init)
	}
	entry := code.Funcs[code.Prog.Entry]
	if entry == nil {
		return nil, fmt.Errorf("vliw: no entry function %q", code.Prog.Entry)
	}
	ret, err := s.run(entry)
	if err != nil {
		return nil, err
	}
	s.buf.flushResidency(s)
	s.stats.Cycles = s.now + s.penalty
	if reg := opts.Obs.Registry(); reg != nil {
		foldStats(reg, &s.stats)
	}
	return &Result{Mem: s.mem, Ret: ret, Stats: s.stats}, nil
}

// foldStats accumulates one run's totals into the metrics registry.
// It runs once per simulation, after the hot loop, so enabling metrics
// costs nothing per cycle.
func foldStats(reg *obs.Registry, st *Stats) {
	reg.Counter("sim.runs").Inc()
	reg.Counter("sim.cycles").Add(st.Cycles)
	reg.Counter("sim.stall_cycles").Add(st.StallCycles)
	reg.Counter("sim.branch_penalty_cycles").Add(st.BranchPenaltyCycles)
	reg.Counter("sim.ops_issued").Add(st.OpsIssued)
	reg.Counter("sim.ops_from_buffer").Add(st.OpsFromBuffer)
	reg.Counter("sim.ops_from_memory").Add(st.OpsIssued - st.OpsFromBuffer)
	reg.Counter("sim.ops_nullified").Add(st.OpsNullified)
	reg.Counter("sim.rec_fetches").Add(st.RecFetches)
	for _, ls := range st.Loops {
		reg.Counter("sim.loop.entries").Add(ls.Entries)
		reg.Counter("sim.loop.iterations").Add(ls.Iterations)
		reg.Counter("sim.loop.buffered_iterations").Add(ls.BufferedIterations)
		reg.Counter("sim.loop.buffer_hits").Add(ls.OpsBuffered)
		reg.Counter("sim.loop.buffer_misses").Add(ls.OpsMemory)
		reg.Counter("sim.loop.recordings").Add(ls.Recordings)
	}
	reg.Histogram("sim.cycles_per_run").Observe(st.Cycles)
}

func newFrame(fc *sched.FuncCode) *frame {
	f := &frame{
		fc:       fc,
		regs:     make([]int64, fc.F.NumRegs()+1),
		regPend:  make([][]pending, fc.F.NumRegs()+1),
		preds:    make([]bool, fc.F.NumPreds()+1),
		predPend: make([][]pendingP, fc.F.NumPreds()+1),
	}
	f.preds[0] = true
	return f
}

// settleReg lands every in-flight write to r whose writeback time has
// arrived, in landing order (ties resolved by issue order, which the
// queue preserves).
func (s *sim) settleReg(f *frame, r ir.Reg) {
	q := f.regPend[r]
	if len(q) == 0 {
		return
	}
	kept := q[:0]
	// Land in readyAt order; the queue is issue-ordered, so find
	// successive minima. Queues are tiny (latency <= 8), so an
	// insertion-style pass is fine.
	for {
		best := -1
		for i := range q {
			if q[i].readyAt > s.now {
				continue
			}
			if best < 0 || q[i].readyAt < q[best].readyAt {
				best = i
			}
		}
		if best < 0 {
			break
		}
		f.regs[r] = q[best].val
		q = append(q[:best], q[best+1:]...)
	}
	kept = q
	f.regPend[r] = kept
}

func (s *sim) readReg(f *frame, r ir.Reg) int64 {
	s.settleReg(f, r)
	return f.regs[r]
}

func (s *sim) writeReg(f *frame, r ir.Reg, v int64, lat int64) {
	if r == 0 {
		return
	}
	s.settleReg(f, r)
	f.regPend[r] = append(f.regPend[r], pending{val: ir.W32(v), readyAt: s.now + lat})
}

func (s *sim) readPred(f *frame, p ir.PredReg) bool {
	q := f.predPend[p]
	if len(q) > 0 {
		for {
			best := -1
			for i := range q {
				if q[i].readyAt > s.now {
					continue
				}
				if best < 0 || q[i].readyAt < q[best].readyAt {
					best = i
				}
			}
			if best < 0 {
				break
			}
			f.preds[p] = q[best].val
			q = append(q[:best], q[best+1:]...)
		}
		f.predPend[p] = q
	}
	return f.preds[p]
}

func (s *sim) writePred(f *frame, p ir.PredReg, v bool, lat int64) {
	if p == 0 {
		return
	}
	s.readPred(f, p)
	f.predPend[p] = append(f.predPend[p], pendingP{val: v, readyAt: s.now + lat})
}

// run executes one function invocation (recursively via Go for calls).
func (s *sim) run(fc *sched.FuncCode) (int64, error) {
	f := newFrame(fc)
	for i, p := range fc.F.Params {
		if i < len(s.opts.EntryArgs) {
			f.regs[p] = ir.W32(s.opts.EntryArgs[i])
		}
	}
	return s.exec(f, 0)
}

type callCtx struct {
	depth int
}

// branchAction and storeAction defer control-flow and memory effects
// to end-of-cycle commit. Plain values (no closures) so the exec
// scratch buffers stay allocation-free in steady state.
type branchAction struct {
	so    *sched.SOp
	taken bool
}

type storeAction struct {
	opc  ir.Opcode
	addr int64
	val  int64
}

// exec runs from bundle pc until return.
func (s *sim) exec(f *frame, pc int) (int64, error) {
	depth := 0
	return s.execDepth(f, pc, &callCtx{depth: depth})
}

func (s *sim) execDepth(f *frame, pc int, cc *callCtx) (int64, error) {
	if cc.depth > s.opts.MaxDepth {
		return 0, fmt.Errorf("vliw: call depth exceeded in %s", f.fc.F.Name)
	}
	fc := f.fc
	// Scratch buffers reused across cycles (reset each bundle); nested
	// calls recurse into execDepth and get their own.
	var branches []branchAction
	var stores []storeAction
	for {
		if s.now > s.opts.MaxCycles {
			return 0, fmt.Errorf("vliw: cycle limit exceeded in %s (pc %d)", fc.F.Name, pc)
		}
		if pc < 0 || pc >= len(fc.Bundles) {
			return 0, fmt.Errorf("vliw: pc %d out of range in %s", pc, fc.F.Name)
		}
		bundle := fc.Bundles[pc]

		// Loop-buffer bookkeeping for this fetch.
		fromBuffer, ls := s.buf.fetch(fc, pc, s)

		// EQ model: no interlocks. Reads sample the register file at
		// issue time; the compiler is responsible for timing (the
		// scheduler pads section ends and shadows branches).

		if s.dbg != nil {
			s.dbg.printf("t=%d pc=%d buf=%v\n", s.now, pc, fromBuffer)
		}
		if s.ring != nil {
			aux := int64(0)
			if fromBuffer {
				aux = 1
			}
			s.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimIssue,
				Run: s.label, Func: fc.F.Name, PC: int32(pc),
				Arg: int64(len(bundle.Ops)), Aux: aux})
		}
		// Issue: reads sample now; branch decisions collected.
		branches = branches[:0]
		stores = stores[:0]
		retired := false
		var retVal int64
		callNext := -1

		for _, so := range bundle.Ops {
			op := so.Op
			s.stats.OpsIssued++
			if s.dbg != nil {
				s.dbg.printf("  issue %s\n", op)
			}
			if fromBuffer {
				s.stats.OpsFromBuffer++
				if ls != nil {
					ls.OpsBuffered++
				}
			} else if ls != nil {
				ls.OpsMemory++
			}
			guard := true
			if op.Guard != 0 {
				guard = s.readPred(f, op.Guard)
			}
			if !guard && op.Opcode != ir.OpCmpP {
				s.stats.OpsNullified++
				continue
			}
			src := func(i int) int64 {
				if op.HasImm && i == len(op.Src) {
					return op.Imm
				}
				return s.readReg(f, op.Src[i])
			}
			lat := int64(ir.LatencyOf(op, s.code.Mach.Latency))
			switch {
			case op.Opcode == ir.OpNop:

			case op.Opcode == ir.OpCmpP:
				cond := op.Cmp.Eval(src(0), src(1))
				for _, pd := range op.PredDefines() {
					v, w := pd.Type.Update(guard, cond)
					if w {
						s.writePred(f, pd.Pred, v, lat)
					}
				}

			case op.Opcode == ir.OpSel:
				if s.readReg(f, op.Src[0]) != 0 {
					s.writeReg(f, op.Dest[0], s.readReg(f, op.Src[1]), lat)
				} else {
					s.writeReg(f, op.Dest[0], s.readReg(f, op.Src[2]), lat)
				}

			case ir.IsALUEvaluable(op.Opcode):
				var a, bb int64
				if op.Opcode == ir.OpMov || op.Opcode == ir.OpAbs {
					a = src(0)
				} else {
					a, bb = src(0), src(1)
				}
				s.writeReg(f, op.Dest[0], ir.EvalALU(op.Opcode, op.Cmp, a, bb), lat)

			case op.IsLoad():
				addr := s.readReg(f, op.Src[0]) + op.Imm
				v, err := s.load(op.Opcode, addr)
				if err != nil {
					if op.Speculative {
						v = 0
					} else {
						return 0, fmt.Errorf("%s in %s pc=%d: %v", op, fc.F.Name, pc, err)
					}
				}
				s.writeReg(f, op.Dest[0], v, lat)

			case op.IsStore():
				addr := s.readReg(f, op.Src[0]) + op.Imm
				val := s.readReg(f, op.Src[1])
				stores = append(stores, storeAction{opc: op.Opcode, addr: addr, val: val})
				if e := s.checkStore(op.Opcode, addr); e != nil {
					return 0, fmt.Errorf("%s in %s pc=%d: %v", op, fc.F.Name, pc, e)
				}

			case op.Opcode == ir.OpBr:
				if op.Cmp.Eval(src(0), src(1)) {
					branches = append(branches, branchAction{so: so, taken: true})
				} else if op.LoopBack {
					branches = append(branches, branchAction{so: so, taken: false})
				}

			case op.Opcode == ir.OpJump:
				branches = append(branches, branchAction{so: so, taken: true})

			case op.Opcode == ir.OpBrCLoop:
				c := ir.W32(s.readReg(f, op.Src[0]) - 1)
				s.writeReg(f, op.Dest[0], c, lat)
				branches = append(branches, branchAction{so: so, taken: c > 0})
				_ = c

			case op.Opcode == ir.OpCall:
				callee := s.code.Funcs[op.Callee]
				if callee == nil {
					return 0, fmt.Errorf("vliw: call to unknown %q", op.Callee)
				}
				nf := newFrame(callee)
				for i, parm := range callee.F.Params {
					nf.regs[parm] = s.readReg(f, op.Src[i])
				}
				s.now++
				s.penalty += int64(s.code.Mach.BranchPenalty)
				s.stats.BranchPenaltyCycles += int64(s.code.Mach.BranchPenalty)
				if s.ring != nil {
					s.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimCall,
						Run: s.label, Func: op.Callee, PC: int32(pc)})
				}
				cc.depth++
				rv, err := s.execDepth(nf, 0, cc)
				cc.depth--
				if err != nil {
					return 0, err
				}
				s.penalty += int64(s.code.Mach.BranchPenalty)
				s.stats.BranchPenaltyCycles += int64(s.code.Mach.BranchPenalty)
				if s.ring != nil {
					s.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRet,
						Run: s.label, Func: op.Callee, PC: int32(pc)})
				}
				if len(op.Dest) > 0 {
					s.writeReg(f, op.Dest[0], rv, 1)
				}
				// Resume after the call bundle.
				callNext = fc.FallTarget(pc)
				if callNext < 0 {
					return 0, fmt.Errorf("vliw: call at function end without fallthrough")
				}

			case op.Opcode == ir.OpRet:
				if len(op.Src) > 0 {
					retVal = s.readReg(f, op.Src[0])
				}
				retired = true

			default:
				return 0, fmt.Errorf("vliw: unhandled op %s", op)
			}
		}

		// Commit stores at end of cycle.
		for _, st := range stores {
			_ = s.store(st.opc, st.addr, st.val)
		}
		if retired {
			return retVal, nil
		}
		if callNext >= 0 {
			pc = callNext
			s.now++
			continue
		}

		// Control transfer: first taken branch in slot order wins (the
		// schedule guarantees at most one is truly taken).
		next := -2
		for _, ba := range branches {
			if !ba.taken {
				// Untaken loop-back: loop exit.
				p := s.buf.exitPenalty(fc, pc, ba.so, s)
				s.penalty += p
				s.stats.BranchPenaltyCycles += p
				if p > 0 && s.ring != nil {
					s.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRedirect,
						Run: s.label, Func: fc.F.Name, PC: int32(pc), Arg: p})
				}
				continue
			}
			next = ba.so.TargetBundle
			p := s.buf.takenPenalty(fc, pc, ba.so, s)
			s.penalty += p
			s.stats.BranchPenaltyCycles += p
			if p > 0 && s.ring != nil {
				s.ring.Emit(obs.SimEvent{Cycle: s.now, Kind: obs.SimRedirect,
					Run: s.label, Func: fc.F.Name, PC: int32(pc), Arg: p})
			}
			break
		}
		s.now++
		if next != -2 {
			pc = next
		} else {
			pc = fc.FallTarget(pc)
			if pc < 0 {
				return 0, fmt.Errorf("vliw: fell off end of %s", fc.F.Name)
			}
		}
	}
}

func (s *sim) load(opc ir.Opcode, addr int64) (int64, error) {
	sz := memSize(opc)
	if addr < 0 || addr+sz > int64(len(s.mem)) {
		return 0, fmt.Errorf("load out of range addr=%d", addr)
	}
	switch opc {
	case ir.OpLdB:
		return int64(int8(s.mem[addr])), nil
	case ir.OpLdBU:
		return int64(s.mem[addr]), nil
	case ir.OpLdH:
		return int64(int16(uint16(s.mem[addr]) | uint16(s.mem[addr+1])<<8)), nil
	case ir.OpLdHU:
		return int64(uint16(s.mem[addr]) | uint16(s.mem[addr+1])<<8), nil
	default:
		v := uint32(s.mem[addr]) | uint32(s.mem[addr+1])<<8 |
			uint32(s.mem[addr+2])<<16 | uint32(s.mem[addr+3])<<24
		return int64(int32(v)), nil
	}
}

func (s *sim) checkStore(opc ir.Opcode, addr int64) error {
	if addr < 0 || addr+memSize(opc) > int64(len(s.mem)) {
		return fmt.Errorf("store out of range addr=%d", addr)
	}
	return nil
}

func (s *sim) store(opc ir.Opcode, addr, v int64) error {
	switch opc {
	case ir.OpStB:
		s.mem[addr] = byte(v)
	case ir.OpStH:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(uint64(v) >> 8)
	default:
		s.mem[addr] = byte(v)
		s.mem[addr+1] = byte(uint64(v) >> 8)
		s.mem[addr+2] = byte(uint64(v) >> 16)
		s.mem[addr+3] = byte(uint64(v) >> 24)
	}
	return nil
}

func memSize(opc ir.Opcode) int64 {
	switch opc {
	case ir.OpLdB, ir.OpLdBU, ir.OpStB:
		return 1
	case ir.OpLdH, ir.OpLdHU, ir.OpStH:
		return 2
	default:
		return 4
	}
}
