package vliw

import (
	"fmt"
	"os"
)

var traceOn = os.Getenv("VLIW_TRACE") != ""

func tracef(format string, args ...interface{}) {
	if traceOn {
		fmt.Printf(format, args...)
	}
}
