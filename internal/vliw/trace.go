package vliw

import (
	"fmt"
	"io"
	"os"
)

// debugLog is the per-bundle debug tracer (the old VLIW_TRACE
// printf). It writes to a configurable io.Writer — stderr by default —
// so enabling it can no longer corrupt stdout consumers such as
// `lpbuf -json`. Call sites must guard with `if s.dbg != nil` so the
// disabled path performs no interface boxing (the zero-allocation
// benchmark pins this).
type debugLog struct{ w io.Writer }

// newDebugLog resolves the debug sink: an explicit Options writer
// wins; otherwise the VLIW_TRACE environment variable enables
// stderr output; otherwise tracing is off (nil).
func newDebugLog(opts Options) *debugLog {
	if opts.DebugWriter != nil {
		return &debugLog{w: opts.DebugWriter}
	}
	if os.Getenv("VLIW_TRACE") != "" {
		return &debugLog{w: os.Stderr}
	}
	return nil
}

func (d *debugLog) printf(format string, args ...interface{}) {
	if d == nil {
		return
	}
	fmt.Fprintf(d.w, format, args...)
}
