package vliw_test

import (
	"testing"

	"lpbuf/internal/interp"
	"lpbuf/internal/ir"
	"lpbuf/internal/ir/irbuild"
	"lpbuf/internal/loopbuffer"
	"lpbuf/internal/machine"
	"lpbuf/internal/profile"
	"lpbuf/internal/sched"
	"lpbuf/internal/vliw"
)

// loopProgram builds a single-block counted loop (buffered as a cloop)
// plus a straight prologue/epilogue.
func loopProgram(trips int64) *ir.Program {
	pb := irbuild.NewProgram(32 << 10)
	n := int(trips)
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(2*i - 7)
	}
	inOff := pb.GlobalW("in", n, vals)
	outOff := pb.GlobalW("out", n, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	pin := f.Const(inOff)
	pout := f.Const(outOff)
	cnt := f.Reg()
	acc := f.Reg()
	f.MovI(cnt, trips)
	f.MovI(acc, 0)
	f.Block("loop")
	v := f.Reg()
	f.LdW(v, pin, 0)
	f.MulI(v, v, 3)
	f.Add(acc, acc, v)
	f.StW(pout, 0, v)
	f.AddI(pin, pin, 4)
	f.AddI(pout, pout, 4)
	f.CLoop(cnt, "loop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	return pb.MustBuild()
}

// compile schedules and plans a program with the given buffer size.
func compile(t testing.TB, prog *ir.Program, bufOps int, modulo bool) (*sched.Code, *vliw.BufferPlan) {
	t.Helper()
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	prof.ApplyWeights(prog)
	code, err := sched.Schedule(prog, machine.Default(), sched.Options{EnableModulo: modulo})
	if err != nil {
		t.Fatal(err)
	}
	plan := loopbuffer.Plan(code, prof, bufOps)
	return code, plan
}

func TestBufferRecordThenReplay(t *testing.T) {
	prog := loopProgram(100)
	ref, err := interp.Run(prog.Clone(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, plan := compile(t, prog, 256, false)
	if len(plan.Loops) != 1 {
		t.Fatalf("planned %d loops, want 1", len(plan.Loops))
	}
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != ref.Ret {
		t.Fatalf("ret %d != %d", res.Ret, ref.Ret)
	}
	key := plan.Loops[0].Key()
	ls := res.Stats.Loops[key]
	if ls == nil {
		t.Fatal("no loop stats")
	}
	if ls.Entries != 1 || ls.Recordings != 1 {
		t.Fatalf("entries=%d recordings=%d, want 1/1", ls.Entries, ls.Recordings)
	}
	if ls.Iterations != 100 {
		t.Fatalf("iterations = %d", ls.Iterations)
	}
	// First iteration records from memory; the rest replay.
	if ls.BufferedIterations != 99 {
		t.Fatalf("buffered iterations = %d, want 99", ls.BufferedIterations)
	}
	if res.Stats.RecFetches != 1 {
		t.Fatalf("rec fetches = %d", res.Stats.RecFetches)
	}
}

func TestBufferResidencyAcrossEntries(t *testing.T) {
	// Two sequential activations of the same loop: the hardware table
	// notices the intact image, so the second entry replays at once.
	pb := irbuild.NewProgram(32 << 10)
	outOff := pb.GlobalW("out", 64, nil)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	pout := f.Const(outOff)
	outer := f.Reg()
	acc := f.Reg()
	f.MovI(outer, 2)
	f.MovI(acc, 0)
	f.Block("outerloop")
	cnt := f.Reg()
	f.MovI(cnt, 20)
	f.Block("loop")
	f.AddI(acc, acc, 1)
	f.StW(pout, 0, acc)
	f.CLoop(cnt, "loop")
	f.Block("after")
	f.CLoop(outer, "outerloop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	code, plan := compile(t, prog, 256, false)
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var inner *vliw.LoopStats
	for key, ls := range res.Stats.Loops {
		if ls.Entries == 2 {
			inner = ls
		}
		_ = key
	}
	if inner == nil {
		t.Fatalf("no loop with 2 entries: %+v", res.Stats.Loops)
	}
	if inner.Recordings != 1 {
		t.Fatalf("recordings = %d, want 1 (second entry hits the residency table)", inner.Recordings)
	}
	// 40 iterations total; only the very first fetched from memory.
	if inner.BufferedIterations != 39 {
		t.Fatalf("buffered iterations = %d, want 39", inner.BufferedIterations)
	}
}

func TestTinyBufferExcludesLoop(t *testing.T) {
	prog := loopProgram(100)
	code, plan := compile(t, prog, 4, false) // loop body > 4 ops
	if len(plan.Loops) != 0 {
		t.Fatalf("planned %d loops into a 4-op buffer", len(plan.Loops))
	}
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OpsFromBuffer != 0 {
		t.Fatal("ops issued from a buffer that holds nothing")
	}
	// Unbuffered loop-back branches pay the redirect penalty.
	if res.Stats.BranchPenaltyCycles < 99*int64(machine.Default().BranchPenalty) {
		t.Fatalf("penalty cycles = %d, want >= %d",
			res.Stats.BranchPenaltyCycles, 99*machine.Default().BranchPenalty)
	}
}

func TestBufferedLoopBackIsFree(t *testing.T) {
	prog := loopProgram(100)
	code, plan := compile(t, prog, 256, false)
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The counted loop predicts both loop-backs and the exit: the only
	// penalties permitted are unrelated to the loop (there are none
	// here).
	if res.Stats.BranchPenaltyCycles != 0 {
		t.Fatalf("penalty cycles = %d, want 0 for a fully buffered cloop",
			res.Stats.BranchPenaltyCycles)
	}
}

func TestCyclesImproveWithBuffer(t *testing.T) {
	prog1 := loopProgram(200)
	code1, plan1 := compile(t, prog1, 4, false)
	r1, err := vliw.Run(code1, plan1, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog2 := loopProgram(200)
	code2, plan2 := compile(t, prog2, 256, false)
	r2, err := vliw.Run(code2, plan2, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Cycles >= r1.Stats.Cycles {
		t.Fatalf("buffered run (%d cycles) not faster than unbuffered (%d)",
			r2.Stats.Cycles, r1.Stats.Cycles)
	}
}

func TestNullifiedOpsCounted(t *testing.T) {
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("entry")
	x := f.Const(1)
	y := f.Reg()
	f.MovI(y, 7)
	pt, pf := f.F.NewPred(), f.F.NewPred()
	f.CmpPI(pt, ir.PTUT, pf, ir.PTUF, ir.CmpEQ, x, 1)
	f.MovI(y, 10).Guard = pt // executes
	f.MovI(y, 20).Guard = pf // nullified
	f.Ret(y)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	code, plan := compile(t, prog, 256, false)
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if res.Stats.OpsNullified != 1 {
		t.Fatalf("nullified = %d, want 1", res.Stats.OpsNullified)
	}
}

func TestWloopExitMispredicts(t *testing.T) {
	// A while-style loop (conditional back edge, not cloop) pays one
	// mispredict penalty on exit when buffered.
	pb := irbuild.NewProgram(16 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	i := f.Reg()
	f.MovI(i, 0)
	f.Block("loop")
	f.AddI(i, i, 3)
	f.BrI(ir.CmpLT, i, 1000, "loop")
	f.Block("done")
	f.Ret(i)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	// Mark as wloop without cloopifying: compile with modulo disabled;
	// the loop stays a conditional self-loop... cloopify is not run here
	// (sched only), so the back edge is a plain Br. Mark it.
	fn := prog.Funcs["main"]
	for _, b := range fn.Blocks {
		if last := b.LastOp(); last != nil && last.IsBranch() && last.Target == b.ID {
			last.LoopBack = true
		}
	}
	code, plan := compile(t, prog, 256, false)
	if len(plan.Loops) != 1 || plan.Loops[0].Counted {
		t.Fatalf("expected one wloop plan, got %+v", plan.Loops)
	}
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(machine.Default().BranchPenalty)
	if res.Stats.BranchPenaltyCycles != want {
		t.Fatalf("penalty = %d, want %d (single exit mispredict)",
			res.Stats.BranchPenaltyCycles, want)
	}
}

func TestOverlapEviction(t *testing.T) {
	// Two loops forced to overlap in a tiny buffer evict each other on
	// alternate activations.
	pb := irbuild.NewProgram(32 << 10)
	f := pb.Func("main", 0, true)
	f.Block("pre")
	outer := f.Reg()
	acc := f.Reg()
	f.MovI(outer, 4)
	f.MovI(acc, 0)
	f.Block("outerloop")
	c1 := f.Reg()
	f.MovI(c1, 10)
	f.Block("l1")
	f.AddI(acc, acc, 1)
	f.AddI(acc, acc, 0)
	f.AddI(acc, acc, 0)
	f.CLoop(c1, "l1")
	f.Block("mid")
	c2 := f.Reg()
	f.MovI(c2, 10)
	f.Block("l2")
	f.AddI(acc, acc, 2)
	f.SubI(acc, acc, 0)
	f.AddI(acc, acc, 0)
	f.CLoop(c2, "l2")
	f.Block("after")
	f.CLoop(outer, "outerloop")
	f.Block("done")
	f.Ret(acc)
	pb.SetEntry("main")
	prog := pb.MustBuild()
	// Buffer sized so both loops fit individually but not together.
	code, plan := compile(t, prog, 6, false)
	if len(plan.Loops) != 2 {
		t.Skipf("planner placed %d loops; eviction test needs 2", len(plan.Loops))
	}
	res, err := vliw.Run(code, plan, vliw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range res.Stats.Loops {
		if ls.Entries == 4 && ls.Recordings != 4 {
			t.Fatalf("overlapping loops must re-record per entry: %+v", ls)
		}
	}
}
