package lpbuf

import (
	"testing"

	"lpbuf/internal/obs/perfgate"
)

// TestSimStatBaselines recomputes the golden sim-stat document — the
// Figure 7 buffer-issue percentages at every buffer size, the 256-op
// dynamic op/fetch counts, static code sizes, and normalized fetch
// energy for all 11 benchmarks × both configs — and compares it
// against baselines/simstats.json with explicit tolerances
// (±0.5 %buffer points, exact counts, 1e-6 on energy).
//
// Every value is a deterministic simulator fact, so any drift means
// compilation or simulation semantics changed. If the change is
// intentional, regenerate the file with
// `go run ./cmd/benchdiff -update-baselines` and commit it alongside
// the change that moved the numbers.
func TestSimStatBaselines(t *testing.T) {
	want, err := perfgate.ReadSimStats("baselines/simstats.json")
	if err != nil {
		t.Fatalf("load baselines: %v", err)
	}
	got, err := sharedSuite().SimStats(want.BufferSizes)
	if err != nil {
		t.Fatalf("collect sim stats: %v", err)
	}
	drifts := perfgate.CompareSimStats(want, got, perfgate.DefaultBaselineTolerance())
	if len(drifts) > 0 {
		t.Errorf("%d sim-stat drift(s) vs baselines/simstats.json:\n%s"+
			"if intentional, run `go run ./cmd/benchdiff -update-baselines` and commit the result",
			len(drifts), perfgate.RenderDrifts(drifts))
	}
}
